"""A crash-safe, content-addressed, on-disk artifact store.

``ArtifactStore`` persists toolchain artifacts — optimized IR text, emitted
Verilog, resource reports, compiled-simulator sources — keyed by ``(kind,
key)`` where ``key`` folds in the content fingerprint of everything the
artifact was built from.  It layers *under* the in-memory tiers (Flow stage
cache, simulator compile cache, DSE memo): memory first, then disk, then
build — and a disk hit is always re-verified.

Robustness model (every clause is fault-injectable and tested):

* **Atomic publish.**  Blobs are written temp-file → flush → fsync → rename
  (:mod:`repro.store.io`), so a blob either exists completely or not at
  all.  A crash mid-publish leaves only ``*.tmp-*`` debris, swept by
  ``verify``/``gc``.
* **Checksums on read.**  Every blob carries a header with the SHA-256 of
  its payload; :meth:`get` verifies it on every read.  Bit-rot or torn
  bytes are detected, never served.
* **Quarantine + rebuild.**  A corrupt blob is moved (atomically) into
  ``quarantine/`` and the read reports a miss — the caller rebuilds from
  source and re-publishes, so the store self-heals.
* **Advisory locking.**  Writers serialize on a store-wide advisory lock
  with bounded exponential-backoff retry; a wedged writer cannot deadlock
  readers (reads are lockless — atomic publish makes them safe), and lock
  starvation surfaces as a typed :class:`StoreLockTimeout`.

Layout under the root (``REPRO_STORE_DIR`` / ``FlowConfig.store_dir``)::

    objects/<kind>/<k[:2]>/<key>.blob    header line + payload bytes
    quarantine/<kind>__<key>__<n>.blob   corrupt blobs, kept for forensics
    store.lock                           advisory writer lock

Blob header (one ASCII line): ``repro-store 1 <kind> <size> <sha256hex>``.
"""

from __future__ import annotations

import hashlib
import os
import re
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.ir.errors import IRError
from repro.resilience.faults import InjectedFault, fault_point
from repro.store.io import atomic_write_bytes, is_tmp_debris

try:  # pragma: no cover - platform gate
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback below
    fcntl = None

__all__ = [
    "ArtifactStore",
    "GCReport",
    "StoreError",
    "StoreLockTimeout",
    "StoreReport",
    "VerifyReport",
    "default_store",
    "get_store",
    "store_counters",
]

_MAGIC = b"repro-store"
_VERSION = 1
#: Lock acquisition: attempt i sleeps ``_LOCK_BASE_DELAY * 2**i`` seconds.
_LOCK_ATTEMPTS = 8
_LOCK_BASE_DELAY = 0.01

_SAFE_KEY = re.compile(r"^[A-Za-z0-9._\-]+$")


class StoreError(IRError):
    """The artifact store could not complete an operation.

    Raised only for *unrecoverable* store problems (an unusable root, lock
    starvation).  Recoverable faults — a corrupt blob, a failed publish —
    degrade to cache misses and counters instead.
    """


class StoreLockTimeout(StoreError):
    """The store's advisory writer lock stayed held through every retry."""


#: Process-lifetime counters across every ArtifactStore instance, surfaced
#: through ``repro stats`` / :mod:`repro.obs.cachestats` as ``store.blobs``.
_COUNTERS = {"hits": 0, "misses": 0, "corrupt": 0, "writes": 0,
             "write_failures": 0, "quarantined": 0}

#: The most recently used store (its blob count backs the stats provider).
_LAST_STORE: Optional["ArtifactStore"] = None

#: ``get_store`` memo: one instance per absolute root path.
_STORES: Dict[str, "ArtifactStore"] = {}


def store_counters() -> Dict[str, int]:
    """A snapshot of the process-lifetime store counters."""
    return dict(_COUNTERS)


def reset_store_counters() -> None:
    """Zero the counters (tests)."""
    for key in _COUNTERS:
        _COUNTERS[key] = 0


@dataclass(frozen=True)
class BlobInfo:
    """One on-disk blob."""

    kind: str
    key: str
    path: str
    size: int
    mtime: float


@dataclass
class VerifyReport:
    """Outcome of :meth:`ArtifactStore.verify`."""

    checked: int = 0
    corrupt: List[str] = field(default_factory=list)
    quarantined: int = 0
    debris_removed: int = 0

    @property
    def ok(self) -> bool:
        return not self.corrupt

    def render(self) -> str:
        status = "ok" if self.ok else f"{len(self.corrupt)} CORRUPT"
        lines = [f"verify: {self.checked} blob(s) checked, {status}, "
                 f"{self.quarantined} quarantined, "
                 f"{self.debris_removed} tmp debris removed"]
        lines.extend(f"  corrupt: {path}" for path in self.corrupt)
        return "\n".join(lines)


@dataclass
class GCReport:
    """Outcome of :meth:`ArtifactStore.gc`."""

    evicted: int = 0
    evicted_bytes: int = 0
    debris_removed: int = 0
    remaining: int = 0
    remaining_bytes: int = 0

    def render(self) -> str:
        return (f"gc: evicted {self.evicted} blob(s) "
                f"({self.evicted_bytes} bytes), removed "
                f"{self.debris_removed} tmp debris; {self.remaining} blob(s) "
                f"({self.remaining_bytes} bytes) remain")


@dataclass
class StoreReport:
    """Outcome of :meth:`ArtifactStore.stats`."""

    root: str
    blobs: int
    total_bytes: int
    by_kind: Dict[str, Tuple[int, int]]      # kind -> (count, bytes)
    quarantined: int
    counters: Dict[str, int]

    def render(self) -> str:
        lines = [f"store: {self.root}",
                 f"  {self.blobs} blob(s), {self.total_bytes} bytes, "
                 f"{self.quarantined} quarantined"]
        for kind in sorted(self.by_kind):
            count, size = self.by_kind[kind]
            lines.append(f"  {kind:<12} {count:>6} blob(s) {size:>10} bytes")
        session = ", ".join(f"{name}={value}"
                            for name, value in sorted(self.counters.items()))
        lines.append(f"  session: {session}")
        return "\n".join(lines)


class _StoreLock:
    """Store-wide advisory writer lock with bounded exponential backoff."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._fd: Optional[int] = None

    def __enter__(self) -> "_StoreLock":
        delay = _LOCK_BASE_DELAY
        last_error: Optional[Exception] = None
        for _ in range(_LOCK_ATTEMPTS):
            try:
                fault_point("store.lock")
                if fcntl is not None:
                    fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
                    try:
                        fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    except OSError as error:
                        os.close(fd)
                        raise error
                    self._fd = fd
                    return self
                # Non-POSIX fallback: exclusive-create lock file.  A stale
                # file (dead writer) is broken after 60 seconds.
                try:  # pragma: no cover - non-POSIX only
                    fd = os.open(self.path + ".x",
                                 os.O_CREAT | os.O_EXCL | os.O_RDWR)
                    self._fd = fd
                    return self
                except FileExistsError as error:  # pragma: no cover
                    try:
                        if time.time() - os.path.getmtime(
                                self.path + ".x") > 60.0:
                            os.unlink(self.path + ".x")
                    except OSError:
                        pass
                    raise error
            except InjectedFault as error:
                last_error = error
            except OSError as error:
                last_error = error
            time.sleep(delay)
            delay *= 2
        raise StoreLockTimeout(
            f"could not acquire store lock {self.path!r} after "
            f"{_LOCK_ATTEMPTS} attempts (last error: {last_error})")

    def __exit__(self, *exc) -> None:
        if self._fd is not None:
            if fcntl is not None:
                try:
                    fcntl.flock(self._fd, fcntl.LOCK_UN)
                except OSError:  # pragma: no cover - unlock is best-effort
                    pass
                os.close(self._fd)
            else:  # pragma: no cover - non-POSIX only
                os.close(self._fd)
                try:
                    os.unlink(self.path + ".x")
                except OSError:
                    pass
            self._fd = None


class ArtifactStore:
    """See the module docstring for the robustness model and layout."""

    def __init__(self, root: str) -> None:
        global _LAST_STORE
        self.root = os.path.abspath(root)
        if os.path.exists(self.root) and not os.path.isdir(self.root):
            raise StoreError(
                f"store root {self.root!r} exists and is not a directory")
        try:
            os.makedirs(self.objects_dir, exist_ok=True)
            os.makedirs(self.quarantine_dir, exist_ok=True)
        except OSError as error:
            raise StoreError(
                f"cannot create store root {self.root!r}: {error}")
        _LAST_STORE = self

    # -- layout --------------------------------------------------------------
    @property
    def objects_dir(self) -> str:
        return os.path.join(self.root, "objects")

    @property
    def quarantine_dir(self) -> str:
        return os.path.join(self.root, "quarantine")

    @property
    def lock_path(self) -> str:
        return os.path.join(self.root, "store.lock")

    @staticmethod
    def _safe(key: str) -> str:
        if _SAFE_KEY.match(key):
            return key
        return hashlib.sha256(key.encode("utf-8")).hexdigest()

    def blob_path(self, kind: str, key: str) -> str:
        safe = self._safe(key)
        return os.path.join(self.objects_dir, self._safe(kind),
                            safe[:2], f"{safe}.blob")

    def _lock(self) -> _StoreLock:
        return _StoreLock(self.lock_path)

    # -- primitives ----------------------------------------------------------
    @staticmethod
    def _encode(kind: str, payload: bytes) -> bytes:
        digest = hashlib.sha256(payload).hexdigest()
        header = (f"{_MAGIC.decode()} {_VERSION} {kind} "
                  f"{len(payload)} {digest}\n").encode("ascii")
        return header + payload

    @staticmethod
    def _decode(kind: str, raw: bytes) -> Optional[bytes]:
        """Header-check + checksum-verify; ``None`` means corrupt."""
        newline = raw.find(b"\n")
        if newline < 0:
            return None
        fields = raw[:newline].split()
        payload = raw[newline + 1:]
        if (len(fields) != 5 or fields[0] != _MAGIC
                or fields[1] != str(_VERSION).encode()
                or fields[2] != kind.encode()):
            return None
        try:
            size = int(fields[3])
        except ValueError:
            return None
        if size != len(payload):
            return None
        if hashlib.sha256(payload).hexdigest().encode() != fields[4]:
            return None
        return payload

    def _quarantine(self, kind: str, key: str, path: str) -> None:
        """Atomically move a corrupt blob aside; never raises."""
        base = f"{self._safe(kind)}__{self._safe(key)}"
        for attempt in range(1000):
            target = os.path.join(self.quarantine_dir,
                                  f"{base}__{attempt}.blob")
            if os.path.exists(target):
                continue
            try:
                os.replace(path, target)
                _COUNTERS["quarantined"] += 1
                from repro.obs.tracer import TRACER
                TRACER.count("store.quarantined")
                TRACER.event("store.quarantine", cat="store", kind=kind,
                             key=key[:16])
            except OSError:
                pass
            return

    # -- the public API ------------------------------------------------------
    def put(self, kind: str, key: str, payload) -> Optional[str]:
        """Publish ``payload`` (bytes or str) under ``(kind, key)``.

        Returns the blob path, or ``None`` when publication failed — a
        failed publish is *graceful*: the store stays consistent (atomic
        publish guarantees no torn blob) and the caller simply proceeds
        without persistence, so an unwritable or faulted store can never
        fail a build.
        """
        from repro.obs.tracer import TRACER
        if isinstance(payload, str):
            payload = payload.encode("utf-8")
        path = self.blob_path(kind, key)
        try:
            with self._lock():
                existing = self._read_verified(kind, key, count=False)
                if existing == payload:
                    # Identical content already published: refresh recency.
                    os.utime(path)
                    return path
                atomic_write_bytes(path, self._encode(kind, payload))
            _COUNTERS["writes"] += 1
            TRACER.count("store.writes")
            return path
        except StoreLockTimeout:
            raise
        except (OSError, InjectedFault):
            _COUNTERS["write_failures"] += 1
            TRACER.count("store.write_failures")
            return None

    def get(self, kind: str, key: str) -> Optional[bytes]:
        """The payload under ``(kind, key)``, checksum-verified.

        ``None`` on a miss *or* on corruption — a corrupt blob is
        quarantined first, so the following rebuild + :meth:`put` self-heals
        the store.  Reads are lockless (atomic publish).
        """
        from repro.obs.tracer import TRACER
        payload = self._read_verified(kind, key, count=True)
        if payload is None:
            _COUNTERS["misses"] += 1
            TRACER.count("store.misses")
            return None
        _COUNTERS["hits"] += 1
        TRACER.count("store.hits")
        path = self.blob_path(kind, key)
        try:
            os.utime(path)          # LRU recency for gc
        except OSError:
            pass
        return payload

    def _read_verified(self, kind: str, key: str, count: bool) -> Optional[bytes]:
        path = self.blob_path(kind, key)
        try:
            fault_point("store.read")
            with open(path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            return None
        except (OSError, InjectedFault):
            # An unreadable blob is a miss, not a crash.
            return None
        payload = self._decode(kind, raw)
        if payload is None:
            if count:
                _COUNTERS["corrupt"] += 1
                from repro.obs.tracer import TRACER
                TRACER.count("store.corrupt")
            self._quarantine(kind, key, path)
            return None
        return payload

    def get_text(self, kind: str, key: str) -> Optional[str]:
        payload = self.get(kind, key)
        return None if payload is None else payload.decode("utf-8")

    def has(self, kind: str, key: str) -> bool:
        return os.path.exists(self.blob_path(kind, key))

    # -- maintenance ---------------------------------------------------------
    def iter_blobs(self) -> Iterator[BlobInfo]:
        objects = self.objects_dir
        for dirpath, _dirnames, filenames in os.walk(objects):
            for filename in sorted(filenames):
                if is_tmp_debris(filename) or not filename.endswith(".blob"):
                    continue
                path = os.path.join(dirpath, filename)
                kind = os.path.relpath(dirpath, objects).split(os.sep)[0]
                try:
                    status = os.stat(path)
                except OSError:
                    continue
                yield BlobInfo(kind=kind, key=filename[:-5], path=path,
                               size=status.st_size, mtime=status.st_mtime)

    def _sweep_debris(self) -> int:
        removed = 0
        for dirpath, _dirnames, filenames in os.walk(self.objects_dir):
            for filename in filenames:
                if is_tmp_debris(filename):
                    try:
                        os.unlink(os.path.join(dirpath, filename))
                        removed += 1
                    except OSError:
                        pass
        return removed

    def verify(self, quarantine: bool = True) -> VerifyReport:
        """Checksum-verify every blob; quarantine the corrupt ones."""
        report = VerifyReport()
        for blob in list(self.iter_blobs()):
            try:
                with open(blob.path, "rb") as handle:
                    raw = handle.read()
            except OSError:
                continue
            report.checked += 1
            if self._decode(blob.kind, raw) is None:
                report.corrupt.append(blob.path)
                if quarantine:
                    key = blob.key.rsplit(".", 1)[0]
                    self._quarantine(blob.kind, key, blob.path)
                    report.quarantined += 1
        with self._lock():
            report.debris_removed = self._sweep_debris()
        return report

    def gc(self, max_bytes: Optional[int] = None,
           max_blobs: Optional[int] = None) -> GCReport:
        """Sweep tmp debris and LRU-evict blobs beyond the given budgets."""
        report = GCReport()
        with self._lock():
            report.debris_removed = self._sweep_debris()
            blobs = sorted(self.iter_blobs(), key=lambda b: (b.mtime, b.path))
            total = sum(blob.size for blob in blobs)
            count = len(blobs)
            for blob in blobs:
                over_bytes = max_bytes is not None and total > max_bytes
                over_count = max_blobs is not None and count > max_blobs
                if not (over_bytes or over_count):
                    break
                try:
                    os.unlink(blob.path)
                except OSError:
                    continue
                total -= blob.size
                count -= 1
                report.evicted += 1
                report.evicted_bytes += blob.size
            report.remaining = count
            report.remaining_bytes = total
        return report

    def clear(self, quarantine: bool = True) -> int:
        """Delete every blob (and quarantined blob); returns blobs removed."""
        removed = 0
        with self._lock():
            removed += self._sweep_debris()
            for blob in list(self.iter_blobs()):
                try:
                    os.unlink(blob.path)
                    removed += 1
                except OSError:
                    pass
            if quarantine and os.path.isdir(self.quarantine_dir):
                for filename in os.listdir(self.quarantine_dir):
                    try:
                        os.unlink(os.path.join(self.quarantine_dir, filename))
                    except OSError:
                        pass
        return removed

    def stats(self) -> StoreReport:
        by_kind: Dict[str, Tuple[int, int]] = {}
        blobs = 0
        total = 0
        for blob in self.iter_blobs():
            count, size = by_kind.get(blob.kind, (0, 0))
            by_kind[blob.kind] = (count + 1, size + blob.size)
            blobs += 1
            total += blob.size
        try:
            quarantined = len([name for name in os.listdir(self.quarantine_dir)
                               if name.endswith(".blob")])
        except OSError:
            quarantined = 0
        return StoreReport(root=self.root, blobs=blobs, total_bytes=total,
                           by_kind=by_kind, quarantined=quarantined,
                           counters=store_counters())

    def blob_count(self) -> int:
        return sum(1 for _ in self.iter_blobs())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ArtifactStore {self.root!r}>"


# --------------------------------------------------------------------------- #
# Resolution and registry
# --------------------------------------------------------------------------- #


def get_store(root: str) -> ArtifactStore:
    """The (memoized) store instance for ``root``."""
    path = os.path.abspath(root)
    store = _STORES.get(path)
    if store is None:
        store = ArtifactStore(path)
        _STORES[path] = store
    return store


def default_store() -> Optional[ArtifactStore]:
    """The environment-configured store (``REPRO_STORE_DIR``), or ``None``."""
    root = os.environ.get("REPRO_STORE_DIR", "").strip()
    return get_store(root) if root else None


def _store_stats():
    from repro.obs.cachestats import CacheStats
    store = _LAST_STORE or default_store()
    size = 0
    if store is not None:
        try:
            size = store.blob_count()
        except OSError:  # pragma: no cover - racing deletion
            size = 0
    return CacheStats(name="store.blobs", capacity=None, size=size,
                      hits=_COUNTERS["hits"], misses=_COUNTERS["misses"],
                      evictions=_COUNTERS["quarantined"])


def _register_store_stats() -> None:
    from repro.obs.cachestats import register_cache
    register_cache("store.blobs", _store_stats)


_register_store_stats()
