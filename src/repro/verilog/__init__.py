"""Verilog backend: AST, emitter, FSM synthesis and the HIR code generator."""

from repro.verilog.ast import (
    AlwaysFF,
    Assign,
    BinOp,
    Comment,
    Const,
    Design,
    Display,
    Expr,
    If,
    INPUT,
    Instance,
    MemIndex,
    MemoryDecl,
    MemWrite,
    Module,
    NonBlockingAssign,
    OUTPUT,
    Port,
    Ref,
    RegDecl,
    Ternary,
    UnOp,
    Wire,
    const,
    or_reduce,
    ref,
)
from repro.verilog.codegen import (
    CodegenOptions,
    CodegenResult,
    FunctionLowering,
    VerilogCodeGenerator,
    generate_verilog,
    generate_verilog_impl,
)
from repro.verilog.emitter import emit_design, emit_expr, emit_module
from repro.verilog.fsm import LoopController, LoopSignals, PulseGenerator
from repro.verilog.memory import MemAccess, MemoryLowering, interface_signals
from repro.verilog.naming import SignalNamer, sanitize

__all__ = [
    "AlwaysFF", "Assign", "BinOp", "Comment", "Const", "Design", "Display",
    "Expr", "If", "INPUT", "Instance", "MemIndex", "MemoryDecl", "MemWrite",
    "Module", "NonBlockingAssign", "OUTPUT", "Port", "Ref", "RegDecl",
    "Ternary", "UnOp", "Wire", "const", "or_reduce", "ref",
    "CodegenOptions", "CodegenResult", "FunctionLowering",
    "VerilogCodeGenerator", "generate_verilog", "generate_verilog_impl",
    "emit_design", "emit_expr", "emit_module",
    "LoopController", "LoopSignals", "PulseGenerator",
    "MemAccess", "MemoryLowering", "interface_signals",
    "SignalNamer", "sanitize",
]
