"""Netlist analyses shared by the simulation engines.

The interpreted simulator and the compiled engine both need the same
structural facts about a flattened netlist:

* a *topological order* of the continuous assignments (so combinational
  logic can be evaluated in one forward pass),
* the *level* of each assignment (its depth in the combinational DAG), and
* the *fanout map* from each signal (or memory) to the assignments that
  read it, which is what lets an event-driven scheduler re-evaluate only
  the cone of logic downstream of a change.

All three are derived once per elaboration from the ``reads()``/``writes()``
hooks on the Verilog AST and cached in a :class:`LevelizedNetlist`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.ir.errors import SimulationError
from repro.verilog.ast import Assign, MemIndex, Expr


def order_assigns(assigns: Sequence[Assign]) -> List[Assign]:
    """Topologically order continuous assignments by data dependence.

    Raises :class:`SimulationError` on multiply-driven signals and on
    combinational loops (with the offending cycle in the message).
    """
    producers: Dict[str, Assign] = {}
    for assign in assigns:
        if assign.target in producers:
            raise SimulationError(
                f"signal '{assign.target}' has multiple continuous drivers"
            )
        producers[assign.target] = assign
    ordered: List[Assign] = []
    state: Dict[str, int] = {}  # 0 unseen, 1 visiting, 2 done

    def visit(target: str, chain: List[str]) -> None:
        if state.get(target) == 2 or target not in producers:
            return
        if state.get(target) == 1:
            cycle = " -> ".join(chain + [target])
            raise SimulationError(f"combinational loop: {cycle}")
        state[target] = 1
        for dep in producers[target].expr.refs():
            visit(dep, chain + [target])
        state[target] = 2
        ordered.append(producers[target])

    for target in producers:
        visit(target, [])
    return ordered


def expr_memories(expr: Expr) -> List[str]:
    """Names of memories an expression reads through :class:`MemIndex`."""
    found: List[str] = []

    def walk(node: Expr) -> None:
        if isinstance(node, MemIndex):
            found.append(node.memory)
            walk(node.address)
            return
        for attr in ("operand", "lhs", "rhs", "condition", "true_value",
                     "false_value"):
            child = getattr(node, attr, None)
            if child is not None:
                walk(child)

    walk(expr)
    return found


@dataclass
class LevelizedNetlist:
    """Topologically sorted assignments plus fanout metadata."""

    #: Assignments in dependence order (safe to evaluate front to back).
    ordered: List[Assign] = field(default_factory=list)
    #: Combinational depth of each ordered assignment (inputs/registers = 0).
    levels: List[int] = field(default_factory=list)
    #: signal name -> indices into ``ordered`` of assignments reading it.
    fanout: Dict[str, List[int]] = field(default_factory=dict)
    #: memory name -> indices into ``ordered`` of assignments reading it.
    memory_fanout: Dict[str, List[int]] = field(default_factory=dict)
    #: signal name -> index into ``ordered`` of its (unique) driver.
    driver: Dict[str, int] = field(default_factory=dict)

    @property
    def depth(self) -> int:
        """Length of the longest combinational path, in assignments."""
        return max(self.levels, default=0)


def levelize(assigns: Sequence[Assign]) -> LevelizedNetlist:
    """Order ``assigns`` topologically and compute fanout/level metadata."""
    ordered = order_assigns(assigns)
    netlist = LevelizedNetlist(ordered=ordered)
    for index, assign in enumerate(ordered):
        netlist.driver[assign.target] = index
    for index, assign in enumerate(ordered):
        level = 0
        for dep in assign.expr.refs():
            netlist.fanout.setdefault(dep, []).append(index)
            producer = netlist.driver.get(dep)
            if producer is not None:
                level = max(level, netlist.levels[producer] + 1)
        for memory in expr_memories(assign.expr):
            netlist.memory_fanout.setdefault(memory, []).append(index)
        netlist.levels.append(level)
    return netlist


