"""A small synthesizable-Verilog AST.

The HIR code generator (and the baseline HLS compiler) emit this AST instead
of raw text so that

* the emitter (:mod:`repro.verilog.emitter`) can print clean Verilog,
* the FPGA resource model (:mod:`repro.resources.model`) can walk the design
  and charge LUT/FF/DSP/BRAM costs per construct, and
* the cycle-accurate simulator (:mod:`repro.sim.verilog_sim`) can execute the
  generated design to validate functional correctness.

Only the constructs the code generators need are modelled: wires, registers,
memories, continuous assignments, clocked always blocks with non-blocking
assignments / conditionals / memory writes, and module instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Union

# --------------------------------------------------------------------------- #
# Expressions
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Expr:
    """Base class of every expression."""

    def refs(self) -> Iterator[str]:
        """Names of signals this expression reads."""
        return iter(())


@dataclass(frozen=True)
class Const(Expr):
    """A literal, e.g. ``32'd7``."""

    value: int
    width: int = 32

    def refs(self) -> Iterator[str]:
        return iter(())


@dataclass(frozen=True)
class Ref(Expr):
    """A reference to a wire, register or port by name."""

    name: str

    def refs(self) -> Iterator[str]:
        yield self.name


@dataclass(frozen=True)
class UnOp(Expr):
    """Unary operator: ``!``, ``~``, ``-``, ``|`` (reduction or)."""

    op: str
    operand: Expr

    def refs(self) -> Iterator[str]:
        yield from self.operand.refs()


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary operator: ``+ - * & | ^ << >> < <= > >= == != &&``."""

    op: str
    lhs: Expr
    rhs: Expr

    def refs(self) -> Iterator[str]:
        yield from self.lhs.refs()
        yield from self.rhs.refs()


@dataclass(frozen=True)
class Ternary(Expr):
    """``cond ? a : b`` — the textual form of a multiplexer."""

    condition: Expr
    true_value: Expr
    false_value: Expr

    def refs(self) -> Iterator[str]:
        yield from self.condition.refs()
        yield from self.true_value.refs()
        yield from self.false_value.refs()


@dataclass(frozen=True)
class MemIndex(Expr):
    """Read one word of a memory array: ``mem[addr]``."""

    memory: str
    address: Expr

    def refs(self) -> Iterator[str]:
        yield self.memory
        yield from self.address.refs()


def ref(name: str) -> Ref:
    return Ref(name)


def const(value: int, width: int = 32) -> Const:
    return Const(value, width)


def or_reduce(terms: Sequence[Expr]) -> Expr:
    """OR a list of 1-bit expressions together (0 when the list is empty)."""
    if not terms:
        return Const(0, 1)
    combined: Expr = terms[0]
    for term in terms[1:]:
        combined = BinOp("|", combined, term)
    return combined


# --------------------------------------------------------------------------- #
# Statements inside always blocks
# --------------------------------------------------------------------------- #


@dataclass
class Statement:
    """Base class of sequential statements."""

    def reads(self) -> Iterator[str]:
        """Names of signals (and memories) this statement may read."""
        return iter(())

    def writes(self) -> Iterator[str]:
        """Names of registers (and memories) this statement may write."""
        return iter(())


@dataclass
class NonBlockingAssign(Statement):
    """``target <= expr;`` inside an ``always @(posedge clk)`` block."""

    target: str
    expr: Expr

    def reads(self) -> Iterator[str]:
        yield from self.expr.refs()

    def writes(self) -> Iterator[str]:
        yield self.target


@dataclass
class MemWrite(Statement):
    """``mem[addr] <= data;`` inside a clocked block."""

    memory: str
    address: Expr
    data: Expr

    def reads(self) -> Iterator[str]:
        yield from self.address.refs()
        yield from self.data.refs()

    def writes(self) -> Iterator[str]:
        yield self.memory


@dataclass
class If(Statement):
    """``if (cond) ... else ...`` inside a clocked block."""

    condition: Expr
    then_body: List[Statement] = field(default_factory=list)
    else_body: List[Statement] = field(default_factory=list)

    def reads(self) -> Iterator[str]:
        yield from self.condition.refs()
        for stmt in self.then_body:
            yield from stmt.reads()
        for stmt in self.else_body:
            yield from stmt.reads()

    def writes(self) -> Iterator[str]:
        for stmt in self.then_body:
            yield from stmt.writes()
        for stmt in self.else_body:
            yield from stmt.writes()


@dataclass
class Display(Statement):
    """``$error("...")`` style runtime assertion message (simulation only)."""

    message: str


# --------------------------------------------------------------------------- #
# Module items
# --------------------------------------------------------------------------- #

INPUT = "input"
OUTPUT = "output"


@dataclass
class Port:
    name: str
    direction: str
    width: int = 1

    def __post_init__(self) -> None:
        if self.direction not in (INPUT, OUTPUT):
            raise ValueError(f"invalid port direction {self.direction!r}")


@dataclass
class Wire:
    name: str
    width: int = 1


@dataclass
class RegDecl:
    name: str
    width: int = 1
    init: int = 0


@dataclass
class MemoryDecl:
    """``reg [width-1:0] name [0:depth-1];`` — an on-chip RAM or register file."""

    name: str
    width: int
    depth: int
    #: "bram", "lutram", "registers" or "auto"; consumed by the resource model.
    kind: str = "auto"
    #: True when port-sharing analysis proved a single port suffices.
    single_port: bool = False


@dataclass
class Assign:
    """Continuous assignment ``assign target = expr;``."""

    target: str
    expr: Expr


@dataclass
class AlwaysFF:
    """``always @(posedge clk) begin ... end``."""

    body: List[Statement] = field(default_factory=list)

    def reads(self) -> Iterator[str]:
        for stmt in self.body:
            yield from stmt.reads()

    def writes(self) -> Iterator[str]:
        for stmt in self.body:
            yield from stmt.writes()


@dataclass
class Instance:
    """A sub-module instantiation."""

    module_name: str
    instance_name: str
    connections: Dict[str, Expr] = field(default_factory=dict)


@dataclass
class Comment:
    text: str


ModuleItem = Union[Wire, RegDecl, MemoryDecl, Assign, AlwaysFF, Instance, Comment]


@dataclass
class Module:
    """One Verilog module."""

    name: str
    ports: List[Port] = field(default_factory=list)
    items: List[ModuleItem] = field(default_factory=list)
    #: True for black-box modules (externally supplied Verilog).
    external: bool = False
    #: Source-location comment lines attached to the module header.
    header_comments: List[str] = field(default_factory=list)

    # -- construction helpers -------------------------------------------------
    def add_port(self, name: str, direction: str, width: int = 1) -> Port:
        port = Port(name, direction, width)
        self.ports.append(port)
        return port

    def add_wire(self, name: str, width: int = 1) -> Wire:
        wire = Wire(name, width)
        self.items.append(wire)
        return wire

    def add_reg(self, name: str, width: int = 1, init: int = 0) -> RegDecl:
        reg = RegDecl(name, width, init)
        self.items.append(reg)
        return reg

    def add_memory(self, name: str, width: int, depth: int, kind: str = "auto",
                   single_port: bool = False) -> MemoryDecl:
        memory = MemoryDecl(name, width, depth, kind, single_port)
        self.items.append(memory)
        return memory

    def add_assign(self, target: str, expr: Expr) -> Assign:
        assign = Assign(target, expr)
        self.items.append(assign)
        return assign

    def add_always(self, body: Optional[List[Statement]] = None) -> AlwaysFF:
        always = AlwaysFF(body or [])
        self.items.append(always)
        return always

    def add_instance(self, module_name: str, instance_name: str,
                     connections: Dict[str, Expr]) -> Instance:
        instance = Instance(module_name, instance_name, connections)
        self.items.append(instance)
        return instance

    def add_comment(self, text: str) -> Comment:
        comment = Comment(text)
        self.items.append(comment)
        return comment

    # -- queries -------------------------------------------------------------
    def port(self, name: str) -> Optional[Port]:
        for port in self.ports:
            if port.name == name:
                return port
        return None

    def items_of_type(self, item_type) -> List:
        return [item for item in self.items if isinstance(item, item_type)]

    def signal_width(self, name: str) -> Optional[int]:
        """Width of a named port/wire/reg, if declared."""
        port = self.port(name)
        if port is not None:
            return port.width
        for item in self.items:
            if isinstance(item, (Wire, RegDecl)) and item.name == name:
                return item.width
        return None


@dataclass
class Design:
    """A set of modules forming one design; ``top`` names the root module."""

    top: str
    modules: Dict[str, Module] = field(default_factory=dict)

    def add(self, module: Module) -> Module:
        self.modules[module.name] = module
        return module

    @property
    def top_module(self) -> Module:
        return self.modules[self.top]

    def module(self, name: str) -> Module:
        return self.modules[name]

    def all_instantiated(self, root: Optional[str] = None) -> List[str]:
        """Module names reachable from ``root`` (default: the top module)."""
        root = root or self.top
        seen: List[str] = []
        stack = [root]
        while stack:
            name = stack.pop()
            if name in seen or name not in self.modules:
                continue
            seen.append(name)
            for item in self.modules[name].items:
                if isinstance(item, Instance):
                    stack.append(item.module_name)
        return seen
