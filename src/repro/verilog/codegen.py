"""The HIR-to-Verilog code generator (Section 4.6, Table 3).

Given a module of ``hir.func`` operations with explicit schedules, the code
generator produces a :class:`~repro.verilog.ast.Design`:

* every function becomes a Verilog module with ``clk``/``rst``/``start``/
  ``done`` control, data ports for primitive arguments and results, and a
  memory interface (address/enable/data buses) for each memref argument;
* time variables become one-bit pulses, scheduling offsets become pulse shift
  registers, ``hir.for`` loops become counter-based state machines;
* compute ops become combinational assignments, ``hir.delay`` becomes shift
  registers (shared across delays of the same value), memrefs become register
  banks or RAMs, and ``hir.call`` becomes a module instance.

The generator never mutates the input IR: it clones the module, lowers
``hir.unroll_for`` by replication on the clone, and then translates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ir.errors import LoweringError
from repro.ir.module import ModuleOp
from repro.ir.operation import Operation
from repro.ir.values import Value
from repro.hir.ops import (
    AddOp,
    AllocOp,
    AndOp,
    BinaryOp,
    CallOp,
    CmpOp,
    ConstantOp,
    DelayOp,
    ExtOp,
    ForOp,
    FuncOp,
    MemReadOp,
    MemWriteOp,
    MultOp,
    OrOp,
    ReturnOp,
    SelectOp,
    ShlOp,
    ShrOp,
    SubOp,
    TruncOp,
    UnrollForOp,
    XorOp,
    YieldOp,
    constant_value,
)
from repro.hir.schedule import ScheduleAnalysis
from repro.hir.types import ConstType, MemrefType
from repro.passes.unroll import unroll_all
from repro.verilog.ast import (
    BinOp,
    Const,
    Design,
    Expr,
    INPUT,
    Module,
    NonBlockingAssign,
    OUTPUT,
    Ref,
    Ternary,
)
from repro.verilog.fsm import LoopController, LoopSignals, PulseGenerator
from repro.verilog.memory import (
    MemAccess,
    MemoryLowering,
    interface_directions,
    interface_signals,
)
from repro.verilog.naming import SignalNamer

_BINARY_OPERATORS = {
    AddOp: "+",
    SubOp: "-",
    MultOp: "*",
    AndOp: "&",
    OrOp: "|",
    XorOp: "^",
    ShlOp: "<<",
    ShrOp: ">>",
}

_CMP_OPERATORS = {
    "eq": "==",
    "ne": "!=",
    "lt": "<",
    "le": "<=",
    "gt": ">",
    "ge": ">=",
}


@dataclass
class CodegenOptions:
    """Tunable behaviour of the code generator."""

    #: Print the HIR location of every scheduled operation as a comment
    #: (Section 5.5: mapping Verilog back to HIR for timing closure).
    emit_location_comments: bool = True
    #: Emit simulation-time assertions guarding undefined behaviour
    #: (Section 4.5).  Off by default so resource estimates reflect synthesis.
    emit_assertions: bool = False


@dataclass
class CodegenResult:
    """The generated design plus code-generation statistics."""

    design: Design
    seconds: float
    statistics: Dict[str, int] = field(default_factory=dict)


def width_of(value: Value) -> int:
    """Wire width carrying ``value``."""
    if isinstance(value.type, ConstType):
        return 32
    return max(1, value.type.bitwidth)


class FunctionLowering:
    """Lowers one ``hir.func`` to a Verilog module."""

    def __init__(self, module: ModuleOp, func: FuncOp,
                 options: CodegenOptions) -> None:
        self.module = module
        self.func = func
        self.options = options
        self.vmod = Module(func.symbol_name)
        self.vmod.header_comments.append(f"generated from hir.func @{func.symbol_name}")
        self.namer = SignalNamer()
        self.info = ScheduleAnalysis(func).run()
        self.pulses: Optional[PulseGenerator] = None
        self.loops: Optional[LoopController] = None
        self.memory: Optional[MemoryLowering] = None
        self.value_expr: Dict[int, Expr] = {}
        self.loop_signals: Dict[int, LoopSignals] = {}
        self.loop_prewires: Dict[int, Tuple[str, str, str]] = {}
        self._delay_chains: Dict[Tuple[int, int, int], List[str]] = {}
        self._delay_clock = None
        self._instance_count = 0
        self._done_candidates: List[Expr] = []

    # -- value handling ----------------------------------------------------------
    def expr_of(self, value: Value) -> Expr:
        constant = constant_value(value)
        if constant is not None:
            return Const(constant, width_of(value))
        expr = self.value_expr.get(id(value))
        if expr is None:
            raise LoweringError(
                f"no lowering for value %{value.display_name()} in "
                f"@{self.func.symbol_name}",
                self.func.location,
            )
        return expr

    def _bind(self, value: Value, expr: Expr) -> None:
        self.value_expr[id(value)] = expr

    # -- top-level ------------------------------------------------------------------
    def lower(self) -> Module:
        self._declare_control_ports()
        self._declare_argument_ports()
        self._declare_result_ports()
        self.pulses = PulseGenerator(self.vmod, self.namer)
        self.loops = LoopController(self.vmod, self.namer, self.pulses)
        self.memory = MemoryLowering(self.vmod, self.namer)
        self.pulses.register_root(self.func.time_arg, "start")
        self._register_memref_arguments()
        self._preregister_loops()
        self._lower_block(self.func.body.operations)
        self.memory.finalize()
        self._emit_done()
        return self.vmod

    # -- ports ------------------------------------------------------------------------
    def _declare_control_ports(self) -> None:
        self.vmod.add_port("clk", INPUT, 1)
        self.vmod.add_port("rst", INPUT, 1)
        self.vmod.add_port("start", INPUT, 1)
        self.vmod.add_port("done", OUTPUT, 1)
        self.namer.reserve("clk")
        self.namer.reserve("rst")
        self.namer.reserve("start")
        self.namer.reserve("done")

    def _declare_argument_ports(self) -> None:
        for arg, name in zip(self.func.arguments, self.func.arg_names):
            if isinstance(arg.type, MemrefType):
                directions = interface_directions(name, arg.type)
                for signal, width in interface_signals(name, arg.type).items():
                    self.vmod.add_port(signal, directions[signal], width)
                    self.namer.reserve(signal)
            else:
                self.vmod.add_port(name, INPUT, width_of(arg))
                self.namer.reserve(name)
                self._bind(arg, Ref(name))

    def _declare_result_ports(self) -> None:
        for index, result_type in enumerate(self.func.function_type.results):
            name = f"result{index}"
            self.vmod.add_port(name, OUTPUT, max(1, result_type.bitwidth))
            self.namer.reserve(name)

    def _register_memref_arguments(self) -> None:
        assert self.memory is not None
        for arg, name in zip(self.func.arguments, self.func.arg_names):
            if isinstance(arg.type, MemrefType):
                self.memory.register_interface(arg, name)

    def _preregister_loops(self) -> None:
        """Declare pulse wires for every loop's time variables up front."""
        assert self.pulses is not None
        for op in self.func.walk():
            if isinstance(op, ForOp):
                prefix = self.namer.fresh(f"loop_{op.induction_var.name_hint or 'i'}")
                iter_wire = self.namer.fresh(f"{prefix}_iter")
                done_wire = self.namer.fresh(f"{prefix}_done")
                self.vmod.add_wire(iter_wire, 1)
                self.vmod.add_wire(done_wire, 1)
                self.pulses.register_root(op.iter_time, iter_wire)
                self.pulses.register_root(op.done_time, done_wire)
                self.loop_prewires[id(op)] = (prefix, iter_wire, done_wire)
            elif isinstance(op, UnrollForOp):
                raise LoweringError(
                    "hir.unroll_for must be unrolled before code generation",
                    op.location,
                )

    # -- op lowering -------------------------------------------------------------------
    def _lower_block(self, operations: List[Operation]) -> None:
        for op in operations:
            self._lower_op(op)

    def _location_comment(self, op: Operation) -> None:
        if self.options.emit_location_comments:
            self.vmod.add_comment(f"{op.name} at {op.location}")

    def _lower_op(self, op: Operation) -> None:
        if isinstance(op, (ConstantOp, AllocOp, YieldOp)):
            return
        if isinstance(op, BinaryOp):
            self._lower_binary(op)
        elif isinstance(op, CmpOp):
            self._lower_cmp(op)
        elif isinstance(op, SelectOp):
            self._lower_select(op)
        elif isinstance(op, (TruncOp, ExtOp)):
            self._lower_cast(op)
        elif isinstance(op, DelayOp):
            self._lower_delay(op)
        elif isinstance(op, MemReadOp):
            self._lower_mem_read(op)
        elif isinstance(op, MemWriteOp):
            self._lower_mem_write(op)
        elif isinstance(op, CallOp):
            self._lower_call(op)
        elif isinstance(op, ForOp):
            self._lower_for(op)
        elif isinstance(op, ReturnOp):
            self._lower_return(op)
        else:
            raise LoweringError(f"cannot lower operation '{op.name}'", op.location)

    # -- combinational ops -----------------------------------------------------------
    def _new_result_wire(self, value: Value, hint: str = "") -> str:
        name = self.namer.for_value(value, hint)
        self.vmod.add_wire(name, width_of(value))
        self._bind(value, Ref(name))
        return name

    def _lower_binary(self, op: BinaryOp) -> None:
        operator = _BINARY_OPERATORS.get(type(op))
        if operator is None:
            raise LoweringError(f"unsupported arithmetic op '{op.name}'", op.location)
        wire = self._new_result_wire(op.results[0])
        self.vmod.add_assign(wire, BinOp(operator, self.expr_of(op.lhs),
                                         self.expr_of(op.rhs)))

    def _lower_cmp(self, op: CmpOp) -> None:
        wire = self._new_result_wire(op.results[0])
        self.vmod.add_assign(
            wire,
            BinOp(_CMP_OPERATORS[op.predicate], self.expr_of(op.lhs),
                  self.expr_of(op.rhs)),
        )

    def _lower_select(self, op: SelectOp) -> None:
        wire = self._new_result_wire(op.results[0])
        self.vmod.add_assign(
            wire,
            Ternary(self.expr_of(op.condition), self.expr_of(op.true_value),
                    self.expr_of(op.false_value)),
        )

    def _lower_cast(self, op: Operation) -> None:
        wire = self._new_result_wire(op.results[0])
        self.vmod.add_assign(wire, self.expr_of(op.operand(0)))

    # -- delays (shift registers, shared per Section 6.4) ------------------------------
    def _lower_delay(self, op: DelayOp) -> None:
        if op.delay == 0:
            self._bind(op.results[0], self.expr_of(op.value))
            return
        self._location_comment(op)
        key = (id(op.value), id(op.time_operand), op.offset)
        chain = self._delay_chains.setdefault(key, [])
        if self._delay_clock is None:
            self._delay_clock = self.vmod.add_always()
        width = width_of(op.value)
        base_hint = op.value.name_hint or "dly"
        while len(chain) < op.delay:
            depth = len(chain) + 1
            reg_name = self.namer.fresh(f"{base_hint}_sr{depth}")
            self.vmod.add_reg(reg_name, width)
            source = self.expr_of(op.value) if depth == 1 else Ref(chain[-1])
            self._delay_clock.body.append(NonBlockingAssign(reg_name, source))
            chain.append(reg_name)
        self._bind(op.results[0], Ref(chain[op.delay - 1]))

    # -- memory accesses -----------------------------------------------------------------
    def _access_pulse(self, op) -> str:
        assert self.pulses is not None
        return self.pulses.pulse(op.time_operand, op.offset)

    def _bank_and_address(self, memref_type: MemrefType,
                          indices: List[Value]) -> Tuple[int, Expr]:
        """Split indices into a static bank id and a bank-local address expr."""
        bank = 0
        for dim in memref_type.distributed_dims():
            index_value = constant_value(indices[dim])
            if index_value is None:
                raise LoweringError(
                    "distributed memref dimensions must be indexed by constants"
                )
            bank = bank * memref_type.shape[dim] + index_value
        packed = memref_type.packed_dims()
        if not packed:
            return bank, Const(0, 1)
        address: Expr = self.expr_of(indices[packed[0]])
        for dim in packed[1:]:
            address = BinOp(
                "+",
                BinOp("*", address, Const(memref_type.shape[dim], 32)),
                self.expr_of(indices[dim]),
            )
        return bank, address

    def _lower_mem_read(self, op: MemReadOp) -> None:
        assert self.memory is not None
        self._location_comment(op)
        pulse = self._access_pulse(op)
        bank, address = self._bank_and_address(op.memref_type, op.indices)
        wire = self._new_result_wire(op.results[0])
        self.memory.add_access(
            op.memref,
            MemAccess("r", pulse, bank, address, result_signal=wire),
        )

    def _lower_mem_write(self, op: MemWriteOp) -> None:
        assert self.memory is not None
        self._location_comment(op)
        pulse = self._access_pulse(op)
        bank, address = self._bank_and_address(op.memref_type, op.indices)
        self.memory.add_access(
            op.memref,
            MemAccess("w", pulse, bank, address, data=self.expr_of(op.value)),
        )

    # -- calls -------------------------------------------------------------------------------
    def _lower_call(self, op: CallOp) -> None:
        assert self.memory is not None and self.pulses is not None
        self._location_comment(op)
        callee = self.module.lookup(op.callee)
        if not isinstance(callee, FuncOp):
            raise LoweringError(f"unknown callee @{op.callee}", op.location)
        instance = f"u{self._instance_count}_{op.callee}"
        self._instance_count += 1
        pulse = self.pulses.pulse(op.time_operand, op.offset)
        connections: Dict[str, Expr] = {
            "clk": Ref("clk"),
            "rst": Ref("rst"),
            "start": Ref(pulse),
        }
        for value, arg_name, arg_type in zip(op.args, callee.arg_names,
                                             callee.function_type.inputs):
            if isinstance(arg_type, MemrefType):
                prefix = self.namer.fresh(f"{instance}_{arg_name}")
                for signal, signal_width in interface_signals(arg_name, arg_type).items():
                    local = signal.replace(arg_name, prefix, 1)
                    self.vmod.add_wire(local, signal_width)
                    connections[signal] = Ref(local)
                self.memory.add_delegation(value, prefix)
            else:
                connections[arg_name] = self.expr_of(value)
        for index, result in enumerate(op.results):
            wire = self.namer.fresh(f"{instance}_result{index}")
            self.vmod.add_wire(wire, width_of(result))
            connections[f"result{index}"] = Ref(wire)
            self._bind(result, Ref(wire))
        done_wire = self.namer.fresh(f"{instance}_done")
        self.vmod.add_wire(done_wire, 1)
        connections["done"] = Ref(done_wire)
        self.vmod.add_instance(callee.symbol_name, instance, connections)
        if op.parent_block is self.func.body:
            self._done_candidates.append(Ref(done_wire))

    # -- loops -------------------------------------------------------------------------------
    def _lower_for(self, op: ForOp) -> None:
        assert self.loops is not None and self.pulses is not None
        self._location_comment(op)
        prefix, iter_wire, done_wire = self.loop_prewires[id(op)]
        start_pulse = self.pulses.pulse(op.time_operand, op.offset)
        iv_width = max(1, op.iv_type.bitwidth)
        signals = self.loops.build(
            prefix,
            start_pulse,
            self._resize(self.expr_of(op.lower_bound), iv_width),
            self._resize(self.expr_of(op.upper_bound), iv_width),
            self._resize(self.expr_of(op.step), iv_width),
            iv_width,
            iter_wire,
            done_wire,
        )
        self._bind(op.induction_var, Ref(signals.induction_var))
        self.loop_signals[id(op)] = signals
        self._lower_block(op.body.operations)
        yield_op = op.yield_op()
        assert yield_op is not None  # enforced by the op verifier
        yield_pulse = self.pulses.pulse(yield_op.time_operand, yield_op.offset)
        self.loops.connect_yield(signals, yield_pulse)
        if op.parent_block is self.func.body:
            self._done_candidates.append(Ref(done_wire))

    @staticmethod
    def _resize(expr: Expr, width: int) -> Expr:
        if isinstance(expr, Const):
            return Const(expr.value, width)
        return expr

    # -- return and done ------------------------------------------------------------------------
    def _lower_return(self, op: ReturnOp) -> None:
        for index, value in enumerate(op.operands):
            self.vmod.add_assign(f"result{index}", self.expr_of(value))

    def _emit_done(self) -> None:
        """``done`` goes (and stays) high once every top-level activity finished.

        Each candidate completion pulse (loop done, callee done, result-ready)
        sets a sticky flag; ``done`` is the AND of all flags, so it only rises
        after the slowest top-level loop/call of the function has completed.
        """
        assert self.pulses is not None
        candidates = list(self._done_candidates)
        result_delays = self.func.result_delays
        if result_delays:
            latest = max(result_delays)
            candidates.append(self.pulses.pulse_expr(self.func.time_arg, latest))
        # Operations scheduled directly against the function start time (e.g.
        # the fully unrolled write-back phase of the GEMM kernel) finish at
        # their own static offsets; the latest of them is a completion event.
        top_level_offsets = [
            op.offset for op in self.func.body.operations
            if isinstance(op, (MemReadOp, MemWriteOp, DelayOp, CallOp))
            and op.time_operand is self.func.time_arg
        ]
        if top_level_offsets:
            candidates.append(
                self.pulses.pulse_expr(self.func.time_arg, max(top_level_offsets) + 1)
            )
        if not candidates:
            self.vmod.add_assign("done", Ref("start"))
            return
        sticky_clock = self.vmod.add_always()
        sticky_refs: List[Expr] = []
        for index, pulse in enumerate(candidates):
            flag = self.namer.fresh(f"done_flag{index}")
            self.vmod.add_reg(flag, 1)
            sticky_clock.body.append(
                NonBlockingAssign(flag, BinOp("|", Ref(flag), pulse))
            )
            sticky_refs.append(Ref(flag))
        done_expr: Expr = sticky_refs[0]
        for flag_ref in sticky_refs[1:]:
            done_expr = BinOp("&", done_expr, flag_ref)
        self.vmod.add_assign("done", done_expr)


class VerilogCodeGenerator:
    """Translate a module of HIR functions into a Verilog design."""

    def __init__(self, module: ModuleOp, options: Optional[CodegenOptions] = None) -> None:
        self.module = module
        self.options = options or CodegenOptions()

    def generate(self, top: Optional[str] = None) -> CodegenResult:
        start_time = time.perf_counter()
        work = self.module.clone()
        unroll_all(work)
        functions = [op for op in work.walk() if isinstance(op, FuncOp)]
        if not functions:
            raise LoweringError("module contains no hir.func to generate")
        top_name = top or self._default_top(functions)
        design = Design(top=top_name)
        statistics: Dict[str, int] = {"functions": 0, "external-functions": 0}
        for func in functions:
            if func.is_external:
                design.add(self._external_shell(func))
                statistics["external-functions"] += 1
                continue
            lowering = FunctionLowering(work, func, self.options)
            design.add(lowering.lower())
            statistics["functions"] += 1
        elapsed = time.perf_counter() - start_time
        return CodegenResult(design, elapsed, statistics)

    @staticmethod
    def _default_top(functions: List[FuncOp]) -> str:
        internal = [f for f in functions if not f.is_external]
        called: set[str] = set()
        for func in internal:
            for op in func.walk():
                if isinstance(op, CallOp):
                    called.add(op.callee)
        roots = [f for f in internal if f.symbol_name not in called]
        chosen = roots[-1] if roots else internal[-1]
        return chosen.symbol_name

    @staticmethod
    def _external_shell(func: FuncOp) -> Module:
        """A black-box module declaration matching the external signature."""
        module = Module(func.symbol_name, external=True)
        module.add_port("clk", INPUT, 1)
        module.add_port("rst", INPUT, 1)
        module.add_port("start", INPUT, 1)
        module.add_port("done", OUTPUT, 1)
        for name, arg_type in zip(func.arg_names, func.function_type.inputs):
            if isinstance(arg_type, MemrefType):
                directions = interface_directions(name, arg_type)
                for signal, width in interface_signals(name, arg_type).items():
                    module.add_port(signal, directions[signal], width)
            else:
                module.add_port(name, INPUT, max(1, arg_type.bitwidth))
        for index, result_type in enumerate(func.function_type.results):
            module.add_port(f"result{index}", OUTPUT, max(1, result_type.bitwidth))
        return module


def generate_verilog_impl(module: ModuleOp, top: Optional[str] = None,
                          options: Optional[CodegenOptions] = None,
                          ) -> CodegenResult:
    """Run the code generator over ``module`` (the non-deprecated core that
    :meth:`repro.flow.Flow.verilog` is built on)."""
    return VerilogCodeGenerator(module, options).generate(top)


def generate_verilog(module: ModuleOp, top: Optional[str] = None,
                     options: Optional[CodegenOptions] = None) -> CodegenResult:
    """Deprecated convenience wrapper; use
    ``repro.flow.Flow(module, top=...).verilog()`` instead."""
    from repro._compat import warn_deprecated
    warn_deprecated("generate_verilog()", "Flow(module, top=...).verilog()")
    return generate_verilog_impl(module, top=top, options=options)
