"""Controller synthesis: time-variable pulses and loop state machines.

The schedule of an HIR design is realised in hardware as one-bit *pulse*
signals: the pulse for time instant ``%tv + k`` is high exactly in the clock
cycle corresponding to that instant.  Operations scheduled at that instant use
the pulse as their enable.  This module provides

* :class:`PulseGenerator` — given a base pulse for every time variable, it
  builds (and caches) the delayed pulses ``%tv + k`` as one-bit shift
  registers, which is precisely the "schedules map to state machines" row of
  Table 3, and
* :class:`LoopController` — the state machine generated for every ``hir.for``:
  an induction-variable register, an iteration pulse, a repeat/done decision
  driven by the loop's ``hir.yield``, exactly the "for loops map to state
  machines" row of Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.ir.values import Value
from repro.verilog.ast import BinOp, Expr, Module, NonBlockingAssign, Ref, UnOp
from repro.verilog.naming import SignalNamer


class PulseGenerator:
    """Builds delayed one-bit pulses for (time variable, offset) pairs."""

    def __init__(self, module: Module, namer: SignalNamer) -> None:
        self.module = module
        self.namer = namer
        #: Base pulse signal name per time-variable value.
        self._roots: Dict[int, str] = {}
        #: Cache of generated delayed pulses: (id(root), offset) -> signal name.
        self._cache: Dict[Tuple[int, int], str] = {}
        self._clocked = module.add_always()

    def register_root(self, time_var: Value, signal: str) -> None:
        """Associate a time variable with the signal carrying its pulse."""
        self._roots[id(time_var)] = signal
        self._cache[(id(time_var), 0)] = signal

    def has_root(self, time_var: Value) -> bool:
        return id(time_var) in self._roots

    def root_signal(self, time_var: Value) -> str:
        return self._roots[id(time_var)]

    def pulse(self, time_var: Value, offset: int) -> str:
        """Signal name of the pulse for ``time_var + offset`` (built on demand)."""
        if offset < 0:
            raise ValueError(f"negative schedule offset {offset}")
        key = (id(time_var), offset)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if id(time_var) not in self._roots:
            raise KeyError(
                f"time variable %{time_var.display_name()} has no base pulse"
            )
        # Build the chain incrementally so intermediate offsets are shared.
        previous = self.pulse(time_var, offset - 1)
        base = self._roots[id(time_var)]
        name = self.namer.fresh(f"{base}_d{offset}")
        self.module.add_reg(name, 1)
        self._clocked.body.append(NonBlockingAssign(name, Ref(previous)))
        self._cache[key] = name
        return name

    def pulse_expr(self, time_var: Value, offset: int) -> Expr:
        return Ref(self.pulse(time_var, offset))

    @property
    def num_pulse_registers(self) -> int:
        """How many one-bit delay registers have been created (for reports)."""
        return sum(1 for key in self._cache if key[1] > 0)


@dataclass
class LoopSignals:
    """Signals exposed by a generated loop controller."""

    prefix: str
    iter_pulse: str      # %ti — start of each iteration
    done_pulse: str      # the loop op's time result
    induction_var: str   # visible induction-variable value for the current iteration
    iv_width: int
    repeat_pulse: str = ""
    last_reg: str = ""


class LoopController:
    """Generates the state machine implementing one ``hir.for``."""

    def __init__(self, module: Module, namer: SignalNamer,
                 pulses: PulseGenerator) -> None:
        self.module = module
        self.namer = namer
        self.pulses = pulses

    def build(
        self,
        prefix: str,
        start_pulse: str,
        lower_bound: Expr,
        upper_bound: Expr,
        step: Expr,
        iv_width: int,
        iter_pulse: str,
        done_pulse: str,
    ) -> LoopSignals:
        """Emit the loop controller datapath and return its signals.

        ``iter_pulse`` and ``done_pulse`` are wires already declared by the
        caller (they are pre-registered as time-variable pulse roots so that
        operations textually preceding the loop can still reference them).
        The yield-driven repeat/done logic is finished later by
        :meth:`connect_yield` once the loop body (which may contain the inner
        loop whose completion the yield waits on) has been lowered.
        """
        module = self.module
        first = self.namer.fresh(f"{prefix}_first")
        repeat = self.namer.fresh(f"{prefix}_repeat")
        done = done_pulse
        iv = self.namer.fresh(f"{prefix}_iv")
        iv_reg = self.namer.fresh(f"{prefix}_iv_reg")
        last_reg = self.namer.fresh(f"{prefix}_last")

        module.add_comment(f"state machine for loop '{prefix}'")
        module.add_wire(first, 1)
        module.add_wire(repeat, 1)
        module.add_wire(iv, iv_width)
        module.add_reg(iv_reg, iv_width)
        module.add_reg(last_reg, 1)

        module.add_assign(first, Ref(start_pulse))
        module.add_assign(iter_pulse, BinOp("|", Ref(first), Ref(repeat)))
        # The induction variable visible to the loop body.  On the first
        # iteration it is the lower bound; on a repeat pulse it advances by
        # ``step``; between iteration starts it holds the latched value, so it
        # stays stable for the whole iteration (including nested loops).
        module.add_assign(
            iv,
            Ternary_first(
                Ref(first),
                lower_bound,
                Ternary_first(Ref(repeat), BinOp("+", Ref(iv_reg), step), Ref(iv_reg)),
            ),
        )

        clocked = module.add_always()
        clocked.body.append(
            IfPulse(Ref(iter_pulse), [
                NonBlockingAssign(iv_reg, Ref(iv)),
                NonBlockingAssign(
                    last_reg,
                    BinOp(">=", BinOp("+", Ref(iv), step), upper_bound),
                ),
            ])
        )
        return LoopSignals(prefix, iter_pulse, done, iv, iv_width,
                           repeat_pulse=repeat, last_reg=last_reg)

    def connect_yield(self, signals: LoopSignals, yield_pulse: str) -> None:
        """Connect the loop's yield pulse to the repeat/done decision."""
        self.module.add_assign(
            signals.repeat_pulse,
            BinOp("&", Ref(yield_pulse), UnOp("!", Ref(signals.last_reg))),
        )
        self.module.add_assign(
            signals.done_pulse,
            BinOp("&", Ref(yield_pulse), Ref(signals.last_reg)),
        )


# Small helpers kept local to avoid importing the AST's Ternary/If with long
# argument lists at every call site.
def Ternary_first(condition: Expr, when_true: Expr, when_false: Expr) -> Expr:
    from repro.verilog.ast import Ternary

    return Ternary(condition, when_true, when_false)


def IfPulse(condition: Expr, body) -> "If":
    from repro.verilog.ast import If

    return If(condition, list(body))
