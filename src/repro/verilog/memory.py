"""Lowering of memrefs to registers, banked RAMs and memory interfaces.

Table 3: the ``hir.memref`` type maps to block RAMs, distributed RAMs or
registers.  Three cases are handled here:

* **Function-argument memrefs** become a memory *interface* on the generated
  module: address / enable / data buses, exactly as described in Section 4.6.
  The accesses scheduled on the port share the buses through pulse-driven
  multiplexers.
* **Locally allocated memrefs** (``hir.alloc``) become storage inside the
  module: one buffer per bank (Figure 3).  Fully distributed memrefs (empty
  packing) become one register per element with combinational reads; packed
  memrefs become RAM banks with one-cycle read latency.
* **Delegated memrefs** — a memref passed to an ``hir.call`` — are wired
  through to the callee instance, which drives the buses instead of local
  multiplexers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ir.errors import LoweringError
from repro.ir.values import Value
from repro.hir.ops import AllocOp
from repro.hir.types import MemrefType
from repro.verilog.ast import (
    Const,
    Expr,
    If,
    INPUT,
    MemIndex,
    MemWrite,
    Module,
    NonBlockingAssign,
    OUTPUT,
    Ref,
    Ternary,
    or_reduce,
)
from repro.verilog.naming import SignalNamer


@dataclass
class MemAccess:
    """One scheduled read or write through a memref port."""

    kind: str                      # "r" or "w"
    pulse: str                     # enable pulse signal name
    bank: int                      # which bank the access targets
    address: Expr                  # bank-local address expression
    data: Optional[Expr] = None    # written data (writes only)
    result_signal: Optional[str] = None  # wire to drive with read data (reads only)


@dataclass
class _PortInfo:
    memref: Value
    memref_type: MemrefType
    accesses: List[MemAccess] = field(default_factory=list)
    delegation_prefix: Optional[str] = None
    #: For function-argument memrefs: the interface bus prefix (the arg name).
    interface_prefix: Optional[str] = None


def interface_signals(prefix: str, memref_type: MemrefType) -> Dict[str, int]:
    """Bus names and widths of a memref interface with the given prefix."""
    element_width = max(1, memref_type.element_type.bitwidth)
    address_width = max(1, _full_address_width(memref_type))
    signals: Dict[str, int] = {f"{prefix}_addr": address_width}
    if memref_type.can_read:
        signals[f"{prefix}_rd_en"] = 1
        signals[f"{prefix}_rd_data"] = element_width
    if memref_type.can_write:
        signals[f"{prefix}_wr_en"] = 1
        signals[f"{prefix}_wr_data"] = element_width
    return signals


def interface_directions(prefix: str, memref_type: MemrefType) -> Dict[str, str]:
    """Port direction (from the accessing module's point of view) per bus."""
    directions = {f"{prefix}_addr": OUTPUT}
    if memref_type.can_read:
        directions[f"{prefix}_rd_en"] = OUTPUT
        directions[f"{prefix}_rd_data"] = INPUT
    if memref_type.can_write:
        directions[f"{prefix}_wr_en"] = OUTPUT
        directions[f"{prefix}_wr_data"] = OUTPUT
    return directions


def _full_address_width(memref_type: MemrefType) -> int:
    total = memref_type.num_elements
    if total <= 1:
        return 1
    return (total - 1).bit_length()


class MemoryLowering:
    """Collects memref accesses during op lowering, then emits the hardware."""

    def __init__(self, module: Module, namer: SignalNamer) -> None:
        self.module = module
        self.namer = namer
        self._ports: Dict[int, _PortInfo] = {}

    # -- registration ---------------------------------------------------------
    def _port_info(self, memref: Value) -> _PortInfo:
        info = self._ports.get(id(memref))
        if info is None:
            memref_type = memref.type
            if not isinstance(memref_type, MemrefType):
                raise LoweringError("expected a memref-typed value")
            info = _PortInfo(memref, memref_type)
            self._ports[id(memref)] = info
        return info

    def register_interface(self, memref: Value, prefix: str) -> None:
        """Mark ``memref`` as a function-argument interface with bus prefix."""
        self._port_info(memref).interface_prefix = prefix

    def add_access(self, memref: Value, access: MemAccess) -> None:
        self._port_info(memref).accesses.append(access)

    def add_delegation(self, memref: Value, instance_prefix: str) -> None:
        """``memref`` is passed to a callee instance; its buses use this prefix."""
        info = self._port_info(memref)
        if info.delegation_prefix is not None:
            raise LoweringError(
                "a memref port may be passed to at most one hir.call"
            )
        info.delegation_prefix = instance_prefix

    # -- finalization ----------------------------------------------------------
    def finalize(self) -> None:
        """Emit interface muxes, RAM banks and register files."""
        alloc_groups: Dict[int, List[_PortInfo]] = {}
        for info in self._ports.values():
            owner = getattr(info.memref, "operation", None)
            if isinstance(owner, AllocOp):
                alloc_groups.setdefault(id(owner), []).append(info)
            elif info.interface_prefix is not None:
                self._finalize_interface(info)
            else:
                raise LoweringError(
                    f"memref %{info.memref.display_name()} is neither a function "
                    "argument nor produced by hir.alloc"
                )
        for infos in alloc_groups.values():
            owner = infos[0].memref.operation  # type: ignore[attr-defined]
            self._finalize_alloc(owner, infos)

    # -- function-argument interfaces ---------------------------------------------
    def _finalize_interface(self, info: _PortInfo) -> None:
        prefix = info.interface_prefix
        assert prefix is not None
        memref_type = info.memref_type
        if info.delegation_prefix is not None:
            if info.accesses:
                raise LoweringError(
                    f"memref %{info.memref.display_name()} is both accessed "
                    "directly and passed to a call; use separate ports"
                )
            self._pass_through(prefix, info.delegation_prefix, memref_type)
            return
        self.module.add_comment(f"memory interface for argument '{prefix}'")
        reads = [a for a in info.accesses if a.kind == "r"]
        writes = [a for a in info.accesses if a.kind == "w"]
        address_mux = _mux([(a.pulse, a.address) for a in info.accesses])
        self.module.add_assign(f"{prefix}_addr", address_mux)
        if memref_type.can_read:
            self.module.add_assign(
                f"{prefix}_rd_en", or_reduce([Ref(a.pulse) for a in reads])
            )
            for access in reads:
                if access.result_signal:
                    self.module.add_assign(access.result_signal, Ref(f"{prefix}_rd_data"))
        if memref_type.can_write:
            self.module.add_assign(
                f"{prefix}_wr_en", or_reduce([Ref(a.pulse) for a in writes])
            )
            data_mux = _mux([(a.pulse, a.data) for a in writes if a.data is not None])
            self.module.add_assign(f"{prefix}_wr_data", data_mux)

    def _pass_through(self, outer_prefix: str, inner_prefix: str,
                      memref_type: MemrefType) -> None:
        """Wire a callee instance's memory buses straight to this module's ports."""
        self.module.add_comment(
            f"memref argument '{outer_prefix}' is forwarded to callee "
            f"'{inner_prefix}'"
        )
        self.module.add_assign(f"{outer_prefix}_addr", Ref(f"{inner_prefix}_addr"))
        if memref_type.can_read:
            self.module.add_assign(f"{outer_prefix}_rd_en", Ref(f"{inner_prefix}_rd_en"))
            self.module.add_assign(f"{inner_prefix}_rd_data", Ref(f"{outer_prefix}_rd_data"))
        if memref_type.can_write:
            self.module.add_assign(f"{outer_prefix}_wr_en", Ref(f"{inner_prefix}_wr_en"))
            self.module.add_assign(f"{outer_prefix}_wr_data", Ref(f"{inner_prefix}_wr_data"))

    # -- locally allocated storage ----------------------------------------------------
    def _finalize_alloc(self, alloc: AllocOp, infos: List[_PortInfo]) -> None:
        tensor = alloc.tensor_type
        element_width = max(1, tensor.element_type.bitwidth)
        depth = tensor.elements_per_bank
        banks = tensor.num_banks
        base = self.namer.fresh(
            infos[0].memref.name_hint or f"buf{id(alloc) % 1000}"
        )
        single_port = bool(alloc.get_attr("single_port"))
        self.module.add_comment(
            f"storage for hir.alloc '{base}': {banks} bank(s) x {depth} x "
            f"{element_width} bits ({'registers' if depth == 1 else 'RAM'})"
        )
        if depth == 1:
            self._emit_register_banks(base, element_width, banks, infos)
        else:
            self._emit_ram_banks(base, element_width, depth, banks, infos, alloc,
                                 single_port)

    def _emit_register_banks(self, base: str, width: int, banks: int,
                             infos: List[_PortInfo]) -> None:
        bank_regs = []
        for bank in range(banks):
            name = f"{base}_b{bank}"
            self.module.add_reg(name, width)
            bank_regs.append(name)
        clocked = self.module.add_always()
        for info in infos:
            if info.delegation_prefix is not None:
                raise LoweringError(
                    "register-implemented memrefs cannot be passed to hir.call"
                )
            for access in info.accesses:
                target = bank_regs[access.bank]
                if access.kind == "w":
                    assert access.data is not None
                    clocked.body.append(
                        If(Ref(access.pulse),
                           [NonBlockingAssign(target, access.data)])
                    )
                elif access.result_signal:
                    # Combinational read: zero-cycle latency.
                    self.module.add_assign(access.result_signal, Ref(target))

    def _emit_ram_banks(self, base: str, width: int, depth: int, banks: int,
                        infos: List[_PortInfo], alloc: AllocOp,
                        single_port: bool) -> None:
        mem_kind = alloc.mem_kind
        bank_names = []
        for bank in range(banks):
            name = f"{base}_b{bank}"
            self.module.add_memory(name, width, depth, kind=mem_kind,
                                   single_port=single_port)
            bank_names.append(name)
        clocked = self.module.add_always()
        for port_index, info in enumerate(infos):
            if info.delegation_prefix is not None:
                self._delegated_ram_port(bank_names[0], info, clocked, banks)
                continue
            for bank in range(banks):
                bank_accesses = [a for a in info.accesses if a.bank == bank]
                if not bank_accesses:
                    continue
                writes = [a for a in bank_accesses if a.kind == "w"]
                reads = [a for a in bank_accesses if a.kind == "r"]
                if writes:
                    write_enable = or_reduce([Ref(a.pulse) for a in writes])
                    address = _mux([(a.pulse, a.address) for a in writes])
                    data = _mux([(a.pulse, a.data) for a in writes])
                    clocked.body.append(
                        If(write_enable,
                           [MemWrite(bank_names[bank], address, data)])
                    )
                if reads:
                    read_enable = or_reduce([Ref(a.pulse) for a in reads])
                    address = _mux([(a.pulse, a.address) for a in reads])
                    rdata = self.namer.fresh(f"{base}_p{port_index}_b{bank}_rdata")
                    self.module.add_reg(rdata, width)
                    clocked.body.append(
                        If(read_enable,
                           [NonBlockingAssign(rdata,
                                              MemIndex(bank_names[bank], address))])
                    )
                    for access in reads:
                        if access.result_signal:
                            self.module.add_assign(access.result_signal, Ref(rdata))

    def _delegated_ram_port(self, bank_name: str, info: _PortInfo,
                            clocked, banks: int) -> None:
        """A callee instance drives this port's buses."""
        if banks != 1:
            raise LoweringError(
                "a banked memref cannot be passed to hir.call; pass one bank "
                "per call or use a packed memref"
            )
        prefix = info.delegation_prefix
        assert prefix is not None
        memref_type = info.memref_type
        if memref_type.can_write:
            clocked.body.append(
                If(Ref(f"{prefix}_wr_en"),
                   [MemWrite(bank_name, Ref(f"{prefix}_addr"),
                             Ref(f"{prefix}_wr_data"))])
            )
        if memref_type.can_read:
            rdata = self.namer.fresh(f"{prefix}_rdata_reg")
            width = max(1, memref_type.element_type.bitwidth)
            self.module.add_reg(rdata, width)
            clocked.body.append(
                If(Ref(f"{prefix}_rd_en"),
                   [NonBlockingAssign(rdata,
                                      MemIndex(bank_name, Ref(f"{prefix}_addr")))])
            )
            self.module.add_assign(f"{prefix}_rd_data", Ref(rdata))


def _mux(cases: List) -> Expr:
    """Pulse-driven priority multiplexer; 0 when no pulse is active."""
    cases = [(pulse, expr) for pulse, expr in cases if expr is not None]
    if not cases:
        return Const(0, 1)
    result: Expr = cases[-1][1]
    for pulse, expr in reversed(cases[:-1]):
        result = Ternary(Ref(pulse), expr, result)
    return result
