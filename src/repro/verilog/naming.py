"""Deterministic, collision-free Verilog signal naming."""

from __future__ import annotations

import re
from typing import Dict, Optional

from repro.ir.values import Value

_SANITIZE_RE = re.compile(r"[^A-Za-z0-9_]")
_KEYWORDS = {
    "module", "endmodule", "input", "output", "wire", "reg", "assign",
    "always", "begin", "end", "if", "else", "case", "endcase", "posedge",
    "negedge", "parameter", "localparam", "signed", "integer", "for",
}


def sanitize(name: str) -> str:
    """Make ``name`` a legal Verilog identifier."""
    cleaned = _SANITIZE_RE.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "v_" + cleaned
    if cleaned in _KEYWORDS:
        cleaned += "_sig"
    return cleaned


class SignalNamer:
    """Hands out unique signal names, honouring SSA name hints."""

    def __init__(self) -> None:
        self._used: set[str] = set()
        self._value_names: Dict[int, str] = {}
        self._counter = 0

    def reserve(self, name: str) -> str:
        """Claim an exact name (ports, clk/rst); collisions get a suffix."""
        unique = self.fresh(name)
        return unique

    def fresh(self, hint: Optional[str] = None) -> str:
        base = sanitize(hint) if hint else None
        if base is None:
            base = f"sig{self._counter}"
            self._counter += 1
        candidate = base
        suffix = 0
        while candidate in self._used:
            suffix += 1
            candidate = f"{base}_{suffix}"
        self._used.add(candidate)
        return candidate

    def for_value(self, value: Value, prefix: str = "") -> str:
        """A stable name for an SSA value (same name on every request)."""
        key = id(value)
        if key in self._value_names:
            return self._value_names[key]
        hint = value.name_hint or None
        name = self.fresh(f"{prefix}{hint}" if hint else (prefix or None))
        self._value_names[key] = name
        return name
