"""CLI error paths: bad input exits non-zero with a one-line message.

``python -m repro`` is the shell surface of the toolchain; an unknown
kernel, a malformed ``-p`` pair or a bogus engine/pipeline name must read
like a tool diagnostic, never a Python traceback.  In-process tests pin the
exit codes and messages; one subprocess test pins the no-traceback contract
end to end.
"""

import os
import subprocess
import sys

import pytest

from repro.__main__ import main


class TestInProcess:
    def test_unknown_kernel_exits_nonzero(self, capsys):
        code = main(["build", "no_such_kernel"])
        captured = capsys.readouterr()
        assert code != 0
        assert "error:" in captured.err
        assert "unknown kernel" in captured.err
        assert "no_such_kernel" in captured.err

    def test_unknown_kernel_lists_registry(self, capsys):
        code = main(["simulate", "gemmm"])
        captured = capsys.readouterr()
        assert code != 0
        assert "registered kernels" in captured.err

    @pytest.mark.parametrize("pair", ["size", "=8", "size=big", "size="])
    def test_malformed_param_exits_nonzero(self, pair, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["build", "gemm", "-p", pair])
        # SystemExit with a string message: non-zero status, one-line reason.
        message = str(excinfo.value)
        assert message and "\n" not in message
        assert f"bad -p {pair!r}" in message

    def test_invalid_engine_exits_nonzero(self, capsys):
        code = main(["simulate", "gemm", "-p", "size=4",
                     "--engine", "warp-drive"])
        captured = capsys.readouterr()
        assert code != 0
        assert "error:" in captured.err
        assert "warp-drive" in captured.err
        # The message must enumerate the valid engines.
        assert "interpreted" in captured.err

    def test_invalid_pipeline_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["build", "gemm", "--pipeline", "hyper"])
        assert excinfo.value.code != 0
        assert "invalid choice" in capsys.readouterr().err

    def test_fuzz_unknown_oracle_exits_nonzero(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["fuzz", "--count", "1", "--oracles", "teapot",
                  "--no-repro"])
        message = str(excinfo.value)
        assert "unknown oracle" in message and "teapot" in message


class TestSubprocess:
    def _run(self, *args):
        root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        env = dict(os.environ)
        src = os.path.join(root, "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True, text=True, cwd=root, env=env, timeout=120,
        )

    def test_unknown_kernel_no_traceback(self):
        result = self._run("build", "definitely_not_a_kernel")
        assert result.returncode != 0
        assert "Traceback" not in result.stderr
        assert "unknown kernel" in result.stderr
        # One line of diagnostics, not a dump.
        assert len(result.stderr.strip().splitlines()) == 1

    def test_invalid_engine_no_traceback(self):
        result = self._run("simulate", "gemm", "-p", "size=4",
                           "--engine", "nope")
        assert result.returncode != 0
        assert "Traceback" not in result.stderr
        assert len(result.stderr.strip().splitlines()) == 1

    def test_malformed_param_no_traceback(self):
        result = self._run("build", "gemm", "-p", "size=abc")
        assert result.returncode != 0
        assert "Traceback" not in result.stderr
