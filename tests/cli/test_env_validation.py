"""Environment validation and the ``store`` subcommand.

A typo in a ``REPRO_*`` tuning knob must be a one-line error at parse time
(exit 2), never a silent fallback to a default — and never a traceback.
"""

import pytest

from repro.__main__ import main
from repro.envcheck import environment_error, validate_environment


class TestValidateEnvironment:
    def test_empty_environment_is_clean(self):
        assert validate_environment({}) == []
        assert environment_error({}) is None

    @pytest.mark.parametrize("name,value", [
        ("REPRO_DSE_JOBS", "banana"),
        ("REPRO_DSE_JOBS", "0"),
        ("REPRO_DSE_JOBS", "-2"),
        ("REPRO_DSE_MEMO_SIZE", "-1"),
        ("REPRO_SIM_CACHE_SIZE", "many"),
        ("REPRO_DSE_TIMEOUT", "0"),
        ("REPRO_DSE_TIMEOUT", "soon"),
        ("REPRO_DSE_EXECUTOR", "gpu"),
        ("REPRO_SIM_ENGINE", "verilator"),
        ("REPRO_FAULT_PLAN", "store.write:frobnicate"),
        ("REPRO_FAULT_PLAN", "not a plan"),
        ("REPRO_SERVE_WORKERS", "0"),
        ("REPRO_SERVE_WORKERS", "lots"),
        ("REPRO_SERVE_TIMEOUT", "-1"),
        ("REPRO_SERVE_URL", "127.0.0.1:8731"),       # missing scheme
        ("REPRO_SERVE_URL", "ftp://127.0.0.1:8731"),
    ])
    def test_bad_values_are_reported(self, name, value):
        problems = validate_environment({name: value})
        assert len(problems) == 1
        assert problems[0].startswith(f"{name}:")

    @pytest.mark.parametrize("name,value", [
        ("REPRO_DSE_JOBS", "4"),
        ("REPRO_DSE_MEMO_SIZE", "0"),
        ("REPRO_SIM_CACHE_SIZE", "16"),
        ("REPRO_DSE_TIMEOUT", "2.5"),
        ("REPRO_DSE_EXECUTOR", "process"),
        ("REPRO_SIM_ENGINE", "compiled"),
        ("REPRO_FAULT_PLAN", "store.write:io_error@2*3"),
        ("REPRO_STORE_DIR", ""),          # blank disables persistence
        ("REPRO_SERVE_WORKERS", "4"),
        ("REPRO_SERVE_TIMEOUT", "30"),
        ("REPRO_SERVE_URL", "http://127.0.0.1:8731"),
        ("REPRO_SERVE_URL", ""),          # blank means "not configured"
    ])
    def test_good_values_pass(self, name, value):
        assert validate_environment({name: value}) == []

    def test_store_dir_must_not_be_a_file(self, tmp_path):
        target = tmp_path / "occupied"
        target.write_text("not a directory")
        problems = validate_environment({"REPRO_STORE_DIR": str(target)})
        assert len(problems) == 1 and "REPRO_STORE_DIR" in problems[0]
        assert validate_environment(
            {"REPRO_STORE_DIR": str(tmp_path / "fresh")}) == []

    def test_multiple_problems_are_summarized(self):
        error = environment_error({"REPRO_DSE_JOBS": "no",
                                   "REPRO_DSE_EXECUTOR": "gpu"})
        assert error.startswith("invalid environment: ")
        assert "\n" not in error
        assert "+1 more" in error


class TestCliContract:
    def test_bad_env_exits_2_with_one_line(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_DSE_JOBS", "banana")
        assert main(["list"]) == 2
        captured = capsys.readouterr()
        assert captured.err.count("\n") == 1
        assert captured.err.startswith("error: invalid environment: "
                                       "REPRO_DSE_JOBS")

    def test_bad_fault_plan_exits_2(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "store.write:frobnicate")
        assert main(["list"]) == 2
        assert "REPRO_FAULT_PLAN" in capsys.readouterr().err

    def test_clean_env_dispatches(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_DSE_JOBS", "2")
        assert main(["list"]) == 0
        assert "kernels" in capsys.readouterr().out


class TestStoreSubcommand:
    @pytest.fixture()
    def store_env(self, tmp_path, monkeypatch):
        root = str(tmp_path / "store")
        monkeypatch.setenv("REPRO_STORE_DIR", root)
        return root

    def test_no_store_configured_exits_2(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
        assert main(["store", "stats"]) == 2
        assert "no artifact store" in capsys.readouterr().err

    def test_stats_verify_gc_clear_cycle(self, store_env, capsys):
        from repro.store import ArtifactStore
        ArtifactStore(store_env).put("ir", "k", b"payload")

        assert main(["store", "stats"]) == 0
        assert "1 blob(s)" in capsys.readouterr().out

        assert main(["store", "verify"]) == 0
        assert "ok" in capsys.readouterr().out

        assert main(["store", "gc", "--max-blobs", "0"]) == 0
        assert "evicted 1" in capsys.readouterr().out

        assert main(["store", "clear"]) == 0
        assert "cleared" in capsys.readouterr().out

    def test_gc_without_budget_exits_2(self, store_env, capsys):
        assert main(["store", "gc"]) == 2
        assert "--max-bytes" in capsys.readouterr().err

    def test_verify_reports_corruption_with_exit_1(self, store_env, capsys):
        from repro.store import ArtifactStore
        path = ArtifactStore(store_env).put("ir", "k", b"payload")
        with open(path, "r+b") as handle:
            handle.seek(0, 2)
            size = handle.tell()
            handle.seek(size - 1)
            handle.write(b"\x00")
        assert main(["store", "verify"]) == 1
        assert "1 quarantined" in capsys.readouterr().out

    def test_dir_flag_overrides_env(self, tmp_path, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
        root = str(tmp_path / "flag-store")
        from repro.store import ArtifactStore
        ArtifactStore(root).put("ir", "k", b"payload")
        assert main(["store", "stats", "--dir", root]) == 0
        assert root in capsys.readouterr().out
