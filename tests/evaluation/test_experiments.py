"""Integration tests for the evaluation harness (tables and figures).

These run the same code as the benchmark harness at reduced kernel sizes and
assert the qualitative "shape" the paper reports (who wins, what matches
exactly, which diagnostics appear).
"""

import pytest

from repro.evaluation import figures, paper_data, runner, table4, table5, table6


@pytest.fixture(scope="module")
def quick_table5():
    return table5.generate(runner.QUICK_TABLE5_PARAMS)


@pytest.fixture(scope="module")
def quick_table6():
    return table6.generate(runner.QUICK_TABLE6_PARAMS)


class TestTable4:
    @pytest.fixture(scope="class")
    def rows(self):
        return table4.generate(size=8)

    def test_all_four_design_points_present(self, rows):
        assert set(rows) == set(paper_data.PAPER_TABLE4)

    def test_precision_optimization_helps_hir(self, rows):
        auto = rows["HIR (auto opt)"].measured.as_dict()
        noopt = rows["HIR (no opt)"].measured.as_dict()
        assert auto["LUT"] < noopt["LUT"]
        assert auto["FF"] < noopt["FF"]

    def test_manual_precision_helps_hls(self, rows):
        manual = rows["Vivado HLS (manual opt)"].measured.as_dict()
        automatic = rows["Vivado HLS"].measured.as_dict()
        assert manual["LUT"] <= automatic["LUT"]
        assert manual["FF"] <= automatic["FF"]

    def test_shape_check_passes(self, rows):
        assert table4.check_shape(rows)

    def test_render_mentions_paper_numbers(self, rows):
        text = table4.render(rows)
        assert "Table 4" in text and "paper" in text


class TestTable5:
    def test_all_kernels_measured(self, quick_table5):
        assert set(quick_table5) == set(paper_data.PAPER_TABLE5)

    def test_dsp_and_bram_parity(self, quick_table5):
        for name, row in quick_table5.items():
            assert row.baseline.as_dict()["DSP"] == row.hir.as_dict()["DSP"], name
            assert row.baseline.as_dict()["BRAM"] == row.hir.as_dict()["BRAM"], name

    def test_hir_no_worse_in_luts_on_non_pe_kernels(self, quick_table5):
        for name in ("transpose", "stencil_1d", "histogram", "convolution"):
            row = quick_table5[name]
            assert row.hir.as_dict()["LUT"] <= row.baseline.as_dict()["LUT"], name

    def test_fifo_uses_more_registers_than_hand_verilog(self, quick_table5):
        row = quick_table5["fifo"]
        assert row.hir.as_dict()["FF"] >= row.baseline.as_dict()["FF"]

    def test_shape_checks(self, quick_table5):
        checks = table5.check_shape(quick_table5)
        assert all(checks.values()), checks

    def test_render(self, quick_table5):
        text = table5.render(quick_table5)
        assert "Table 5" in text and "gemm" in text


class TestTable6:
    def test_hir_compiles_faster_on_every_kernel(self, quick_table6):
        for name, row in quick_table6.items():
            assert row.speedup > 1.0, f"{name}: {row.speedup}"

    def test_average_speedup_positive(self, quick_table6):
        assert table6.average_speedup(quick_table6) > 1.0

    def test_shape_check(self, quick_table6):
        assert table6.check_shape(quick_table6)

    def test_render_includes_paper_reference(self, quick_table6):
        text = table6.render(quick_table6)
        assert "1112" in text


class TestFigures:
    def test_figure1_reproduced(self):
        assert figures.figure1().reproduced

    def test_figure2_reproduced(self):
        assert figures.figure2().reproduced

    def test_figure3_reproduced(self):
        result = figures.figure3()
        assert result.reproduced
        assert result.bank_layout == paper_data.PAPER_FIGURE3_BANKS

    def test_figure_renders(self):
        assert "Figure 1" in figures.figure1().render()
        assert "Figure 3" in figures.figure3().render()


class TestRunner:
    def test_quick_run_produces_everything(self):
        results = runner.run_all(quick=True)
        assert results.table4 and results.table5 and results.table6
        assert results.figure1.reproduced and results.figure2.reproduced
        assert results.figure3.reproduced
        rendered = results.render()
        assert "Table 4" in rendered and "Figure 3" in rendered
