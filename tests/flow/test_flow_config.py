"""FlowConfig: env round-trips and the documented precedence chain.

Precedence (highest wins): per-call kwarg > FlowConfig field > process
default (``set_default_engine``) > environment (``REPRO_*``) > built-in.
"""

import pytest

from repro.flow import ENV_VARS, Flow, FlowConfig, FlowError
from repro.kernels import build_kernel


@pytest.fixture()
def transpose_flow():
    return Flow(build_kernel("transpose", size=4),
                config=FlowConfig(pipeline="none"))


class TestFromEnv:
    def test_every_env_var_round_trips(self):
        env = {
            "REPRO_SIM_ENGINE": "compiled",
            "REPRO_DSE_JOBS": "3",
            "REPRO_DSE_EXECUTOR": "process",
            "REPRO_DSE_MEMO_SIZE": "17",
            "REPRO_SIM_CACHE_SIZE": "5",
            "REPRO_STORE_DIR": "/tmp/repro-store-roundtrip",
        }
        assert set(env) == set(ENV_VARS)
        config = FlowConfig.from_env(env)
        assert config.engine == "compiled"
        assert config.dse_jobs == 3
        assert config.dse_executor == "process"
        assert config.dse_memo_size == 17
        assert config.sim_cache_size == 5
        assert config.store_dir == "/tmp/repro-store-roundtrip"

    def test_unset_variables_inherit(self):
        config = FlowConfig.from_env({})
        assert config.engine is None
        assert config.dse_jobs is None
        assert config.dse_executor is None
        assert config.dse_memo_size is None
        assert config.sim_cache_size is None

    def test_real_environment_round_trip(self, monkeypatch):
        for var, value in (("REPRO_SIM_ENGINE", "interpreted"),
                           ("REPRO_DSE_JOBS", "2"),
                           ("REPRO_DSE_EXECUTOR", "thread"),
                           ("REPRO_DSE_MEMO_SIZE", "99"),
                           ("REPRO_SIM_CACHE_SIZE", "7")):
            monkeypatch.setenv(var, value)
        config = FlowConfig.from_env()
        assert (config.engine, config.dse_jobs, config.dse_executor,
                config.dse_memo_size, config.sim_cache_size) == (
                    "interpreted", 2, "thread", 99, 7)

    def test_garbage_integers_are_ignored(self):
        config = FlowConfig.from_env({"REPRO_DSE_JOBS": "lots"})
        assert config.dse_jobs is None

    def test_overrides_beat_env(self):
        config = FlowConfig.from_env({"REPRO_SIM_ENGINE": "interpreted"},
                                     engine="compiled")
        assert config.engine == "compiled"


class TestValidation:
    def test_unknown_pipeline_rejected(self):
        with pytest.raises(FlowError, match="pipeline"):
            FlowConfig(pipeline="hyperoptimize")

    def test_unknown_engine_rejected(self):
        with pytest.raises(FlowError, match="engine"):
            FlowConfig(engine="verilator")

    def test_bad_jobs_rejected(self):
        with pytest.raises(FlowError, match="dse_jobs"):
            FlowConfig(dse_jobs=0)

    def test_bad_executor_rejected(self):
        with pytest.raises(FlowError, match="dse_executor"):
            FlowConfig(dse_executor="gpu")

    def test_with_returns_modified_copy(self):
        base = FlowConfig()
        derived = base.with_(engine="compiled", pipeline="none")
        assert base.engine is None and derived.engine == "compiled"
        assert derived.pipeline == "none"


class TestEnginePrecedence:
    def test_per_call_beats_config(self, transpose_flow):
        flow = Flow(transpose_flow.source,
                    config=FlowConfig(pipeline="none", engine="interpreted"))
        outcome = flow.simulate(seed=0, engine="compiled").value
        assert outcome.engine == "compiled"

    def test_config_beats_process_default(self, transpose_flow):
        from repro.sim import set_default_engine
        previous = set_default_engine("interpreted")
        try:
            flow = Flow(transpose_flow.source,
                        config=FlowConfig(pipeline="none", engine="compiled"))
            assert flow.simulate(seed=0).value.engine == "compiled"
        finally:
            set_default_engine(previous)

    def test_process_default_used_when_config_inherits(self, transpose_flow):
        from repro.sim import set_default_engine
        previous = set_default_engine("compiled")
        try:
            assert transpose_flow.simulate(seed=0).value.engine == "compiled"
        finally:
            set_default_engine(previous)

    def test_resolve_engine_chain(self):
        from repro.sim import get_default_engine
        config = FlowConfig()
        assert config.resolve_engine() == get_default_engine()
        assert config.resolve_engine("compiled") == "compiled"
        assert FlowConfig(engine="compiled").resolve_engine() == "compiled"


class TestDsePrecedence:
    def test_per_call_jobs_beat_config(self):
        options = FlowConfig(dse_jobs=2).hls_options(jobs=4)
        assert options.jobs == 4

    def test_config_jobs_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DSE_JOBS", "8")
        assert FlowConfig(dse_jobs=2).hls_options().jobs == 2

    def test_env_jobs_used_when_config_inherits(self, monkeypatch):
        monkeypatch.setenv("REPRO_DSE_JOBS", "8")
        assert FlowConfig().hls_options().jobs == 8

    def test_executor_passthrough(self):
        assert FlowConfig(dse_executor="process").hls_options().executor == \
            "process"


class TestCacheBounds:
    def test_sim_cache_size_zero_disables_compile_cache(self):
        from repro.sim.engine import clear_compile_cache, compile_cache_size
        clear_compile_cache()
        flow = Flow(build_kernel("transpose", size=4),
                    config=FlowConfig(pipeline="none", sim_cache_size=0))
        flow.simulate(seed=0, engine="compiled")
        assert compile_cache_size() == 0

    def test_sim_cache_inherits_env_when_unset(self):
        from repro.sim.engine import clear_compile_cache, compile_cache_size
        clear_compile_cache()
        flow = Flow(build_kernel("transpose", size=4),
                    config=FlowConfig(pipeline="none"))
        flow.simulate(seed=0, engine="compiled")
        assert compile_cache_size() == 1
        clear_compile_cache()

    def test_limits_restore_previous_override(self):
        from repro.sim.engine.cache import _cache_capacity, set_cache_capacity
        previous = set_cache_capacity(33)
        try:
            config = FlowConfig(sim_cache_size=2)
            with config.limits():
                assert _cache_capacity() == 2
            assert _cache_capacity() == 33
        finally:
            set_cache_capacity(previous)

    def test_dse_memo_limit_applies(self):
        from repro.hls.dse import _memo_capacity, set_memo_capacity
        previous = set_memo_capacity(None)
        try:
            with FlowConfig(dse_memo_size=11).limits():
                assert _memo_capacity() == 11
        finally:
            set_memo_capacity(previous)
