"""Golden equivalence: the Flow API vs the legacy entry points.

The acceptance bar of the Flow redesign: for every registered kernel, a
``Flow`` with ``pipeline="none"`` produces byte-identical Verilog text and
trace-identical simulations to the legacy ``generate_verilog`` +
``run_design`` path, and the legacy entry points keep working behind
``DeprecationWarning`` shims.  A second sweep proves the optimizing
pipelines are clone-faithful: optimizing a Flow-internal clone emits the
same bytes as the legacy optimize-in-place flow.
"""

import warnings

import numpy as np
import pytest

from repro.flow import Flow, FlowConfig
from repro.kernels import build_kernel, kernel_names

SMALL = {
    "transpose": {"size": 8},
    "stencil_1d": {"size": 16},
    "histogram": {"pixels": 16, "bins": 16},
    "gemm": {"size": 2},
    "convolution": {"size": 6},
    "fifo": {"depth": 16},
    "matvec": {"size": 4},
    "prefix_sum": {"size": 8},
    "spmv": {"rows": 4, "nnz": 2},
    "sorting_network": {"size": 4},
}


def legacy_verilog_text(module, top):
    from repro.verilog import generate_verilog
    from repro.verilog.emitter import emit_design
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return emit_design(generate_verilog(module, top=top).design)


def legacy_run(artifacts, seed, engine=None):
    from repro.sim import run_design
    from repro.verilog import generate_verilog
    inputs = artifacts.make_inputs(seed)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        design = generate_verilog(artifacts.module, top=artifacts.top).design
        run = run_design(
            design,
            memories={name: (memref_type, inputs[name])
                      for name, memref_type in artifacts.interfaces.items()},
            scalar_inputs=artifacts.scalar_args,
            external_models=artifacts.external_models or None,
            drain_cycles=16,
            engine=engine,
        )
    return run, inputs


def assert_trace_identical(legacy, flow_run):
    assert legacy.done == flow_run.done
    assert legacy.cycles == flow_run.cycles
    assert legacy.results == flow_run.results
    assert set(legacy.memories) == set(flow_run.memories)
    for name in legacy.memories:
        assert np.array_equal(legacy.memory_array(name),
                              flow_run.memory_array(name)), name


@pytest.mark.parametrize("name", sorted(SMALL))
class TestGoldenEquivalence:
    def test_verilog_bytes_identical(self, name):
        artifacts = build_kernel(name, **SMALL[name])
        flow = Flow(artifacts, config=FlowConfig(pipeline="none"))
        assert flow.verilog_text == legacy_verilog_text(artifacts.module,
                                                        artifacts.top)

    def test_simulation_trace_identical(self, name):
        artifacts = build_kernel(name, **SMALL[name])
        legacy, legacy_inputs = legacy_run(artifacts, seed=5)
        flow = Flow(artifacts, config=FlowConfig(pipeline="none"))
        outcome = flow.simulate(seed=5).value
        for key in legacy_inputs:
            assert np.array_equal(legacy_inputs[key], outcome.inputs[key])
        assert_trace_identical(legacy, outcome.run)

    def test_optimizing_pipeline_is_clone_faithful(self, name):
        """Flow optimizes a clone; the bytes must match optimize-in-place."""
        from repro.passes import optimization_pipeline
        artifacts = build_kernel(name, **SMALL[name])
        flow = Flow(build_kernel(name, **SMALL[name]),
                    config=FlowConfig(pipeline="optimize"))
        flow_text = flow.verilog_text
        optimization_pipeline().run(artifacts.module)
        assert flow_text == legacy_verilog_text(artifacts.module,
                                                artifacts.top)

    def test_artifact_helpers_match_flow(self, name):
        """KernelArtifacts.simulate (now Flow-backed) still returns the
        legacy trace."""
        artifacts = build_kernel(name, **SMALL[name])
        legacy, _ = legacy_run(artifacts, seed=2)
        run, _ = artifacts.simulate(seed=2)
        assert_trace_identical(legacy, run)


class TestGoldenCompiledEngine:
    def test_compiled_engine_trace_identical(self):
        artifacts = build_kernel("gemm", size=2)
        legacy, _ = legacy_run(artifacts, seed=3, engine="compiled")
        flow = Flow(artifacts, config=FlowConfig(pipeline="none"))
        outcome = flow.simulate(seed=3, engine="compiled").value
        assert_trace_identical(legacy, outcome.run)

    def test_batched_lanes_match_legacy_batch(self):
        from repro.sim import run_design_batch
        from repro.verilog import generate_verilog
        artifacts = build_kernel("transpose", size=8)
        seeds = [0, 1, 2]
        inputs_per_lane = [artifacts.make_inputs(seed) for seed in seeds]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            design = generate_verilog(artifacts.module,
                                      top=artifacts.top).design
            legacy = run_design_batch(
                design,
                memories={name: (t, [inputs[name]
                                     for inputs in inputs_per_lane])
                          for name, t in artifacts.interfaces.items()},
                drain_cycles=16,
            )
        flow = Flow(artifacts, config=FlowConfig(pipeline="none"))
        batch = flow.simulate_batch(seeds).value
        assert np.array_equal(legacy.cycles, batch.run.cycles)
        for lane in range(len(seeds)):
            assert np.array_equal(legacy.memory_array("Co", lane),
                                  batch.memory_array("Co", lane))


class TestDeprecationShims:
    """Every legacy entry point still works and says what replaced it."""

    def test_generate_verilog_warns(self):
        from repro.verilog import generate_verilog
        artifacts = build_kernel("transpose", size=4)
        with pytest.warns(DeprecationWarning, match="Flow"):
            result = generate_verilog(artifacts.module, top=artifacts.top)
        assert result.design.top == "transpose"

    def test_run_design_warns(self):
        from repro.sim import run_design
        artifacts = build_kernel("transpose", size=4)
        flow = Flow(artifacts, config=FlowConfig(pipeline="none"))
        inputs = artifacts.make_inputs(0)
        with pytest.warns(DeprecationWarning, match="simulate"):
            run = run_design(
                flow.design,
                memories={name: (t, inputs[name])
                          for name, t in artifacts.interfaces.items()},
                drain_cycles=16,
            )
        assert run.done

    def test_run_design_batch_warns(self):
        from repro.sim import run_design_batch
        artifacts = build_kernel("transpose", size=4)
        flow = Flow(artifacts, config=FlowConfig(pipeline="none"))
        inputs = artifacts.make_inputs(0)
        with pytest.warns(DeprecationWarning, match="simulate_batch"):
            run = run_design_batch(
                flow.design,
                memories={name: (t, [inputs[name]])
                          for name, t in artifacts.interfaces.items()},
                drain_cycles=16,
            )
        assert run.done.all()

    def test_generate_design_warns(self):
        artifacts = build_kernel("transpose", size=4)
        with pytest.warns(DeprecationWarning, match="flow"):
            design = artifacts.generate_design()
        assert design.top == "transpose"


def test_every_registered_kernel_is_covered():
    """The golden sweep must not silently skip a newly registered kernel."""
    assert set(kernel_names()) == set(SMALL)
