"""Flow stages: lazy caching, content-based invalidation, registry, CLI."""

import numpy as np
import pytest

from repro.flow import Flow, FlowConfig, FlowError
from repro.kernels import (
    KERNEL_BUILDERS,
    UnknownKernelError,
    build_kernel,
    register_kernel,
    unregister_kernel,
)
from repro.kernels import transpose as transpose_kernel


class TestStageCaching:
    def test_second_access_is_cached(self):
        flow = Flow(build_kernel("transpose", size=4))
        first = flow.verilog()
        second = flow.verilog()
        assert not first.cached
        assert second.cached
        assert second.fingerprint == first.fingerprint
        assert second.value is first.value

    def test_all_stages_report_timings(self):
        flow = Flow(build_kernel("transpose", size=4))
        flow.resources()
        timings = flow.timings()
        assert set(timings) >= {"hir", "optimized", "verilog", "resources"}
        assert all(seconds >= 0 for seconds in timings.values())

    def test_artifacts_carry_provenance(self):
        flow = Flow(build_kernel("transpose", size=4))
        artifact = flow.verilog()
        provenance = dict(artifact.provenance)
        assert provenance["pipeline"] == "optimize"
        assert provenance["top"] == "transpose"
        assert len(artifact.fingerprint) == 16

    def test_clear_drops_stages(self):
        flow = Flow(build_kernel("transpose", size=4))
        flow.verilog()
        flow.clear()
        assert flow.timings() == {}
        assert not flow.verilog().cached

    def test_config_change_needs_new_flow_not_stale_cache(self):
        artifacts = build_kernel("transpose", size=4)
        noopt = Flow(artifacts, config=FlowConfig(pipeline="none"))
        opt = Flow(artifacts, config=FlowConfig(pipeline="optimize"))
        assert noopt.verilog_text != opt.verilog_text


class TestInvalidationOnMutation:
    """The fix for the old `getattr(self, "_design")` stale-cache hack."""

    def _mutate(self, module):
        from repro.passes import optimization_pipeline
        optimization_pipeline(verify_each=False).run(module)

    def test_verilog_rebuilds_after_module_mutation(self):
        flow = Flow(build_kernel("transpose", size=4),
                    config=FlowConfig(pipeline="none"))
        before = flow.verilog()
        self._mutate(flow.module)
        after = flow.verilog()
        assert not after.cached
        assert after.fingerprint != before.fingerprint
        assert after.value is not before.value

    def test_kernel_artifacts_no_longer_serve_stale_designs(self):
        artifacts = build_kernel("transpose", size=4)
        first_design = artifacts.flow().design
        self._mutate(artifacts.module)
        second_design = artifacts.flow().design
        assert second_design is not first_design
        # ... and the fresh design still simulates correctly.
        run, inputs = artifacts.simulate(seed=1)
        assert artifacts.check_outputs(run, inputs)

    def test_unchanged_module_shares_the_design(self):
        artifacts = build_kernel("transpose", size=4)
        run_a, _ = artifacts.simulate(seed=0)
        run_b, _ = artifacts.simulate(seed=1)
        assert artifacts.flow().verilog().cached


class TestBareModuleFlows:
    def test_top_and_interfaces_are_derived(self):
        flow = Flow(transpose_kernel.build_hir(4))
        assert flow.top == "transpose"
        assert set(flow.interfaces) == {"Ai", "Co"}

    def test_simulate_with_explicit_inputs_zero_fills_outputs(self):
        flow = Flow(transpose_kernel.build_hir(4))
        matrix = np.arange(16).reshape(4, 4)
        outcome = flow.simulate(inputs={"Ai": matrix}).value
        assert np.array_equal(outcome.memory_array("Co"), matrix.T)

    def test_unknown_input_interface_rejected(self):
        flow = Flow(transpose_kernel.build_hir(4))
        with pytest.raises(FlowError, match="unknown interface"):
            flow.simulate(inputs={"A": np.zeros((4, 4))})  # typo for "Ai"

    def test_missing_readable_interface_rejected(self):
        flow = Flow(transpose_kernel.build_hir(4))
        with pytest.raises(FlowError, match="readable interface 'Ai'"):
            flow.simulate(inputs={"Co": np.zeros((4, 4))})

    def test_validate_without_reference_raises(self):
        flow = Flow(transpose_kernel.build_hir(4))
        with pytest.raises(FlowError, match="reference"):
            flow.validate()

    def test_simulate_without_stimulus_raises(self):
        flow = Flow(transpose_kernel.build_hir(4))
        with pytest.raises(FlowError, match="stimulus"):
            flow.simulate(seed=0)

    def test_multi_function_module_needs_explicit_top(self):
        from repro.evaluation.figures import build_array_add
        module = build_array_add(correct=True)
        # single non-external function: inferred fine
        assert Flow(module).top

    def test_validate_with_supplied_reference(self):
        flow = Flow(
            transpose_kernel.build_hir(4),
            make_inputs=lambda seed: {
                "Ai": np.full((4, 4), seed, dtype=np.int64),
                "Co": np.zeros((4, 4), dtype=np.int64),
            },
            reference=lambda inputs: {"Co": np.asarray(inputs["Ai"]).T},
        )
        assert flow.validate(seed=9).value.ok


class TestKernelRegistry:
    def test_unknown_kernel_lists_the_registry(self):
        with pytest.raises(KeyError) as excinfo:
            build_kernel("typo")
        message = str(excinfo.value)
        assert "typo" in message
        assert "register_kernel" in message
        for name in ("gemm", "transpose", "fifo"):
            assert name in message

    def test_unknown_kernel_error_is_a_keyerror(self):
        with pytest.raises(UnknownKernelError):
            build_kernel("nope")

    def test_register_kernel_plugs_into_flow(self):
        def build_tiny(size=4):
            artifacts = transpose_kernel.build(size)
            artifacts.name = "tiny_transpose"
            return artifacts

        register_kernel("tiny_transpose", build_tiny)
        try:
            assert "tiny_transpose" in KERNEL_BUILDERS
            flow = Flow.from_kernel("tiny_transpose", size=4)
            assert flow.validate(seed=1).value.ok
        finally:
            unregister_kernel("tiny_transpose")
        assert "tiny_transpose" not in KERNEL_BUILDERS

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_kernel("gemm", lambda: None)

    def test_overwrite_requires_opt_in(self):
        original = KERNEL_BUILDERS["gemm"]
        register_kernel("gemm", original, overwrite=True)
        assert KERNEL_BUILDERS["gemm"] is original

    def test_non_callable_builder_rejected(self):
        with pytest.raises(TypeError, match="callable"):
            register_kernel("broken", None)


class TestTopLevelExports:
    def test_lazy_exports_resolve(self):
        import repro
        assert repro.Flow is Flow
        assert repro.FlowConfig is FlowConfig
        assert repro.build_kernel is build_kernel
        assert callable(repro.register_kernel)
        assert "Flow" in dir(repro)

    def test_unknown_attribute_still_raises(self):
        import repro
        with pytest.raises(AttributeError):
            repro.does_not_exist


class TestCommandLine:
    def test_list(self, capsys):
        from repro.__main__ import main
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gemm" in out and "compiled" in out

    def test_simulate_ok(self, capsys):
        from repro.__main__ import main
        assert main(["simulate", "transpose", "-p", "size=4",
                     "--engine", "compiled"]) == 0
        assert "ok" in capsys.readouterr().out

    def test_build_writes_verilog(self, tmp_path, capsys):
        from repro.__main__ import main
        output = tmp_path / "transpose.v"
        assert main(["build", "transpose", "-p", "size=4", "--pipeline",
                     "none", "-o", str(output), "--resources"]) == 0
        text = output.read_text()
        assert "module transpose" in text
        # byte-identical to the library path
        flow = Flow(build_kernel("transpose", size=4),
                    config=FlowConfig(pipeline="none"))
        assert text == flow.verilog_text

    def test_sweep(self, capsys):
        from repro.__main__ import main
        assert main(["sweep", "transpose", "-p", "size=4",
                     "--seeds", "3"]) == 0
        out = capsys.readouterr().out
        assert out.count("ok") == 3

    def test_bad_param_rejected(self):
        from repro.__main__ import main
        with pytest.raises(SystemExit):
            main(["build", "transpose", "-p", "size=big"])
