"""Flow × ArtifactStore: warm-store sessions reproduce artifacts exactly.

A cold process pointed at a warm ``REPRO_STORE_DIR`` must serve the same
bytes the original session produced — and any store damage (corruption,
torn publishes) may cost a rebuild but can never change an artifact or fail
a build.  The compiled→interpreted engine fallback rides the same contract:
a compile-side failure degrades, a divergence never does.
"""

import numpy as np
import pytest

from repro.flow import Flow, FlowConfig
from repro.kernels import build_kernel
from repro.resilience import (
    FaultPlan,
    InjectedError,
    install_plan,
    resilience_counters,
    set_plan,
)
from repro.store import ArtifactStore, store_counters


@pytest.fixture(autouse=True)
def no_ambient_plan():
    previous = set_plan(None)
    try:
        yield
    finally:
        set_plan(previous)


def _flow(store_root, **overrides):
    config = FlowConfig(pipeline="optimize", verify_each=False,
                        store_dir=store_root, **overrides)
    return Flow(build_kernel("matvec", size=4), config=config)


class TestWarmStoreReproduction:
    def test_fresh_session_serves_identical_bytes(self, tmp_path):
        root = str(tmp_path / "store")
        first = _flow(root)
        verilog = first.verilog().value.text
        resources = first.resources().value
        assert ArtifactStore(root).blob_count() >= 3   # ir, verilog, resources

        hits_before = store_counters()["hits"]
        second = _flow(root)                # a brand-new session, warm store
        assert second.verilog().value.text == verilog
        report = second.resources().value
        assert (report.lut, report.ff, report.dsp, report.bram) == \
            (resources.lut, resources.ff, resources.dsp, resources.bram)
        assert store_counters()["hits"] > hits_before

    def test_simulation_identical_from_warm_store(self, tmp_path):
        root = str(tmp_path / "store")
        cold = _flow(root, engine="compiled").simulate(seed=3).value
        warm = _flow(root, engine="compiled").simulate(seed=3).value
        assert warm.run.cycles == cold.run.cycles
        for name in ("y",):
            assert np.array_equal(warm.memory_array(name),
                                  cold.memory_array(name))

    def test_blank_store_dir_disables_persistence(self, tmp_path):
        flow = _flow("")
        flow.verilog()
        assert flow.config.resolve_store() is None

    def test_corrupt_ir_blob_rebuilds_identically(self, tmp_path):
        root = str(tmp_path / "store")
        verilog = _flow(root).verilog().value.text

        store = ArtifactStore(root)
        ir_blobs = [info for info in store.iter_blobs() if info.kind == "ir"]
        assert len(ir_blobs) == 1
        with open(ir_blobs[0].path, "r+b") as handle:
            data = bytearray(handle.read())
            data[len(data) // 2] ^= 0xFF
            handle.seek(0)
            handle.write(data)

        quarantined_before = store_counters()["quarantined"]
        assert _flow(root).verilog().value.text == verilog
        assert store_counters()["quarantined"] == quarantined_before + 1
        assert store.verify().ok            # self-healed on the rebuild

    def test_store_faults_never_fail_a_build(self, tmp_path):
        root = str(tmp_path / "store")
        baseline = _flow(root).verilog().value.text
        plan = FaultPlan.parse(
            "store.write:io_error*9;store.read:io_error*9;"
            "store.lock:io_error*2")
        with install_plan(plan):
            faulted = _flow(str(tmp_path / "other")).verilog().value.text
        assert faulted == baseline


class TestEngineFallback:
    def _fresh_compile_flow(self, store_root):
        from repro.sim.engine import clear_compile_cache
        clear_compile_cache()
        return _flow(store_root, engine="compiled")

    def test_compile_fault_falls_back_to_interpreter(self, tmp_path):
        baseline = self._fresh_compile_flow("").simulate(seed=0).value
        flow = self._fresh_compile_flow("")
        before = resilience_counters().get("flow.engine_fallback", 0)
        with install_plan(FaultPlan.parse("engine.compile:error")):
            outcome = flow.simulate(seed=0)
        assert outcome.value.engine == "interpreted"
        assert ("fallback", "interpreted") in outcome.provenance
        assert resilience_counters()["flow.engine_fallback"] == before + 1
        assert outcome.value.run.cycles == baseline.run.cycles
        assert np.array_equal(outcome.value.memory_array("y"),
                              baseline.memory_array("y"))

    def test_fallback_can_be_disabled(self, tmp_path):
        flow = self._fresh_compile_flow("")
        flow = Flow(flow.source,
                    config=flow.config.with_(engine_fallback=False))
        with install_plan(FaultPlan.parse("engine.compile:error")):
            with pytest.raises(InjectedError):
                flow.simulate(seed=0)

    def test_interpreted_engine_never_falls_back(self, tmp_path):
        # The interpreter IS the fallback; a fault there must propagate.
        flow = _flow("", engine="interpreted")
        config = flow.config
        with pytest.raises(InjectedError):
            flow._fallback_engine("interpreted", InjectedError("boom"))
        assert config.engine_fallback
