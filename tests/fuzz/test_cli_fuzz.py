"""The ``python -m repro fuzz`` surface: exit codes, reproducer layout,
campaign determinism."""

import os

from repro.__main__ import main
from repro.fuzz import run_fuzz


class TestFuzzCommand:
    def test_clean_run_exits_zero(self, capsys, tmp_path):
        code = main(["fuzz", "--seed", "0", "--count", "3",
                     "--max-ops", "20", "--out-dir", str(tmp_path)])
        captured = capsys.readouterr()
        assert code == 0
        assert "0 failure(s)" in captured.out
        assert os.listdir(str(tmp_path)) == []  # no reproducers written

    def test_oracle_subset_accepted(self, tmp_path):
        code = main(["fuzz", "--seed", "5", "--count", "2",
                     "--max-ops", "10", "--oracles", "pipeline,flow-cache",
                     "--out-dir", str(tmp_path)])
        assert code == 0


class TestCampaignDeterminism:
    def test_same_campaign_twice(self):
        first = run_fuzz(seed=40, count=5, max_ops=15, out_dir=None)
        second = run_fuzz(seed=40, count=5, max_ops=15, out_dir=None)
        assert first.ok and second.ok
        assert first.count == second.count == 5
