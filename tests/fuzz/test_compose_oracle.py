"""The fuzzer's compose mode: generated programs chained through
``repro.graph`` and cross-checked over every engine, plus the self-contained
(sys.path-bootstrapping) reproducer scripts."""

import os
import subprocess
import sys

import pytest

from repro.fuzz.generator import derive_consumer_spec, generate_spec
from repro.fuzz.oracles import ORACLES, OracleFailure, check_compose
from repro.fuzz.runner import write_repro
from repro.fuzz.spec import materialize

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))


class TestComposeMode:
    def test_compose_oracle_registered(self):
        assert "compose" in ORACLES

    def test_consumer_shape_matches_producer_output(self):
        for seed in range(20):
            spec = generate_spec(seed, max_ops=30)
            consumer = derive_consumer_spec(spec)
            out_shape = tuple(spec.sizes[dim]
                              for dim in spec.writes[0].index_perm)
            assert consumer.sizes == out_shape

    def test_consumer_derivation_is_deterministic(self):
        spec = generate_spec(3, max_ops=30)
        assert derive_consumer_spec(spec) == derive_consumer_spec(spec)

    def test_pinned_sizes_are_honoured(self):
        spec = generate_spec(99, max_ops=20, sizes=(3, 5))
        assert spec.sizes == (3, 5)
        materialize(spec)  # still schedule-valid

    @pytest.mark.tier1
    def test_compose_oracle_clean_on_fixed_seeds(self):
        for seed in range(6):
            failure = check_compose(generate_spec(seed, max_ops=25))
            assert failure is None, failure.render()


class TestReproducerBootstrap:
    def test_script_runs_without_pythonpath(self, tmp_path):
        """A reproducer executed from the repo root with a clean environment
        (no PYTHONPATH) must import repro via its own sys.path bootstrap."""
        spec = generate_spec(5, max_ops=10)
        # Mimic the real layout: <root>/fuzz-failures/seed_N.py next to
        # <root>/src/repro (symlinked here so tmp_path acts as the root).
        os.symlink(os.path.join(REPO_ROOT, "src"), tmp_path / "src")
        out_dir = tmp_path / "fuzz-failures"
        path = write_repro(spec, OracleFailure("pipeline", "synthetic"),
                           str(out_dir), 10, oracles=("pipeline",))
        env = {key: value for key, value in os.environ.items()
               if key != "PYTHONPATH"}
        result = subprocess.run([sys.executable, path], cwd=str(tmp_path),
                                env=env, capture_output=True, text=True,
                                timeout=120)
        assert result.returncode == 0, result.stderr
        assert "all oracles pass" in result.stdout

    def test_script_mentions_no_pythonpath_requirement(self, tmp_path):
        spec = generate_spec(5, max_ops=10)
        path = write_repro(spec, OracleFailure("pipeline", "synthetic"),
                           str(tmp_path), 10)
        with open(path) as handle:
            text = handle.read()
        assert "sys.path" in text
        assert "PYTHONPATH=src python" not in text
