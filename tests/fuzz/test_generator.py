"""The random program generator: deterministic, bounded, schedule-valid."""

import pytest

from repro.fuzz.generator import MAX_OFFSET, generate_spec
from repro.fuzz.oracles import check_generator
from repro.fuzz.spec import ProgramSpec, materialize, result_offset
from repro.ir.printer import print_module
from repro.passes.schedule_verifier import verify_schedule
from repro.ir.verifier import verify as verify_structure


class TestDeterminism:
    def test_same_seed_same_spec(self):
        assert generate_spec(7, max_ops=40) == generate_spec(7, max_ops=40)

    def test_same_seed_same_ir_text(self):
        spec = generate_spec(11, max_ops=40)
        first = print_module(materialize(spec).module)
        second = print_module(materialize(spec).module)
        assert first == second

    def test_different_seeds_differ(self):
        texts = {print_module(materialize(generate_spec(seed)).module)
                 for seed in range(8)}
        assert len(texts) > 1

    def test_json_round_trip(self):
        spec = generate_spec(13, max_ops=40)
        assert ProgramSpec.from_json(spec.to_json()) == spec
        assert (print_module(materialize(ProgramSpec.from_json(spec.to_json())).module)
                == print_module(materialize(spec).module))


class TestBounds:
    @pytest.mark.parametrize("max_ops", [1, 5, 40])
    def test_max_ops_respected(self, max_ops):
        for seed in range(20):
            spec = generate_spec(seed, max_ops=max_ops)
            assert 1 <= len(spec.ops) <= max_ops

    def test_max_ops_must_be_positive(self):
        with pytest.raises(ValueError):
            generate_spec(0, max_ops=0)

    def test_offsets_bounded(self):
        for seed in range(30):
            spec = generate_spec(seed, max_ops=60)
            offsets = {"iv": 0}
            for index, read_offset in enumerate(spec.input_read_offsets()):
                offsets[f"in{index}"] = read_offset + 1
            for index, op in enumerate(spec.ops):
                offsets[f"op{index}"] = result_offset(
                    op.kind, [offsets.get(ref) for ref in op.operands],
                    op.params)
            assert all(offset is None or offset <= MAX_OFFSET
                       for offset in offsets.values())


class TestValidity:
    @pytest.mark.parametrize("chunk", range(5))
    def test_generated_programs_are_schedule_clean(self, chunk):
        for seed in range(chunk * 10, chunk * 10 + 10):
            spec = generate_spec(seed, max_ops=40)
            program = materialize(spec)
            verify_structure(program.module)
            report = verify_schedule(program.module)
            assert report.ok, (
                f"seed {seed}: {report.diagnostics[0].render()}")

    def test_generator_oracle_agrees(self):
        assert check_generator(generate_spec(3)) is None

    def test_interfaces_match_spec(self):
        spec = generate_spec(17)
        program = materialize(spec)
        assert len(program.input_names) == spec.n_inputs
        assert len(program.output_names) == spec.n_outputs
        for name in program.input_names:
            assert program.interfaces[name].port == "r"
        ports = spec.ports_of_outputs()
        for index, name in enumerate(program.output_names):
            assert program.interfaces[name].port == ports[index]
