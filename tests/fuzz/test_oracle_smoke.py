"""The nightly-CI contract in miniature: ~100 random programs, every one
cross-checked over the pipeline, engine, compose and Flow-cache oracles.

Seeds are fixed, so this suite is deterministic; a failure here means a real
divergence between two paths of the toolchain (or a generator regression)
and comes with the failing seed in the assertion message — replay it with
``python -m repro fuzz --seed <N> --count 1``.

The 100-program sweep is the ``slow`` tier; the default (tier-1) run keeps
a 10-program canary so the oracles never go completely untested on a PR.
"""

import pytest

from repro.fuzz import check_program, generate_spec

#: 10 chunks x 10 seeds = 100 programs, matching the documented smoke scale.
CHUNKS = 10
SEEDS_PER_CHUNK = 10


@pytest.mark.tier1
def test_fuzz_canary():
    """A handful of programs through every oracle on every PR."""
    for seed in range(8):
        failure = check_program(generate_spec(seed, max_ops=25))
        assert failure is None, (
            f"seed {seed} diverged — replay with "
            f"`python -m repro fuzz --seed {seed} --count 1`:\n"
            f"{failure.render()}")


@pytest.mark.slow
@pytest.mark.parametrize("chunk", range(CHUNKS))
def test_fuzz_smoke(chunk):
    for seed in range(chunk * SEEDS_PER_CHUNK,
                      (chunk + 1) * SEEDS_PER_CHUNK):
        failure = check_program(generate_spec(seed, max_ops=40))
        assert failure is None, (
            f"seed {seed} diverged — replay with "
            f"`python -m repro fuzz --seed {seed} --count 1`:\n"
            f"{failure.render()}")


def test_unknown_oracle_rejected():
    with pytest.raises(ValueError, match="unknown oracle"):
        check_program(generate_spec(0), oracles=("no-such-oracle",))
