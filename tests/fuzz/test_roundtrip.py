"""Property-style printer -> parser round-trips over fuzz-generated IR.

The fuzz oracles cross-check pipelines, engines, composition and caching but
never exercise the textual format; this closes that gap: every generated
``ProgramSpec``'s printed IR must re-parse to a module with an *identical*
``module_fingerprint`` (the same canonical bytes the Flow cache keys on).
The same property is asserted for every registered kernel and for a composed
multi-function design, so symbols, calls and allocs all survive the trip.
"""

import pytest

from repro.ir import parse_module, print_module
from repro.ir.printer import module_fingerprint
from repro.fuzz.generator import derive_consumer_spec, generate_spec
from repro.fuzz.spec import materialize
from repro.kernels import build_kernel

#: Seeds swept by the tier-1 property run (the slow tier sweeps 10x more).
TIER1_SEEDS = 25
SLOW_SEEDS = 250


def assert_roundtrip(module, context):
    text = print_module(module)
    reparsed = parse_module(text)
    assert module_fingerprint(reparsed) == module_fingerprint(module), (
        f"{context}: printed IR re-parsed to different canonical bytes")
    # And the round-trip is a fixed point: print(parse(print(m))) == print(m).
    assert print_module(reparsed) == text, (
        f"{context}: reprinting the reparsed module changed the text")


@pytest.mark.tier1
def test_fuzz_programs_roundtrip_tier1():
    for seed in range(TIER1_SEEDS):
        spec = generate_spec(seed, max_ops=40)
        assert_roundtrip(materialize(spec).module, f"seed {seed}")


@pytest.mark.slow
@pytest.mark.parametrize("chunk", range(10))
def test_fuzz_programs_roundtrip_full(chunk):
    seeds_per_chunk = SLOW_SEEDS // 10
    for seed in range(chunk * seeds_per_chunk, (chunk + 1) * seeds_per_chunk):
        spec = generate_spec(seed, max_ops=60)
        assert_roundtrip(materialize(spec).module, f"seed {seed}")


def test_derived_consumer_programs_roundtrip():
    for seed in range(10):
        consumer = derive_consumer_spec(generate_spec(seed, max_ops=30))
        assert_roundtrip(materialize(consumer).module,
                         f"consumer of seed {seed}")


@pytest.mark.parametrize("kernel,params", [
    ("transpose", {"size": 4}),
    ("stencil_1d", {"size": 8}),
    ("histogram", {"pixels": 8, "bins": 8}),
    ("gemm", {"size": 2}),
    ("convolution", {"size": 6}),
    ("fifo", {"depth": 8}),
    ("matvec", {"size": 4}),
    ("prefix_sum", {"size": 8}),
    ("spmv", {"rows": 4, "nnz": 2}),
    ("sorting_network", {"size": 4}),
], ids=lambda value: value if isinstance(value, str) else "")
def test_every_kernel_roundtrips(kernel, params):
    assert_roundtrip(build_kernel(kernel, **params).module, kernel)


def test_composed_design_roundtrips():
    from repro.graph import build_scenario
    module = build_scenario("histogram_cdf", pixels=16, bins=8).build().module
    assert_roundtrip(module, "histogram_cdf composition")
