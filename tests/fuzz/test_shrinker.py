"""Shrinking and reproduction: failures bisect down to minimal specs, and
the written reproducer scripts replay them.

The end-to-end test injects a real miscompile locally (the acceptance
scenario): the *worklist* strength-reduction pattern is weakened while the
legacy oracle pipeline keeps the full rewrite, so the two emit different IR
and the pipeline oracle fires.  The fuzzer must find it, shrink it to a
two-op-or-less core, and write a reproducer that exits 1 while the bug is
present and 0 once it is healed.
"""

import pytest

from repro.fuzz import (
    OracleFailure,
    generate_spec,
    replay_spec,
    run_fuzz,
    shrink,
)
from repro.fuzz.shrink import remove_ops
from repro.fuzz.spec import OpSpec, ProgramSpec, WriteSpec
from repro.passes.strength_reduction import StrengthReductionPass


def _chain_spec() -> ProgramSpec:
    """in0 -> add -> mult -> xor -> write, plus an independent dead-end add."""
    return ProgramSpec(
        seed=99,
        sizes=(4,),
        ii=1,
        n_inputs=1,
        n_outputs=1,
        ops=(
            OpSpec("add", ("in0", "c:1")),
            OpSpec("mult", ("op0", "c:5")),
            OpSpec("xor", ("op1", "in0")),
            OpSpec("add", ("in0", "in0")),
        ),
        writes=(WriteSpec(0, "op2", (0,)),),
    )


class TestRemoveOps:
    def test_rewires_users_to_first_operand(self):
        spec = _chain_spec()
        reduced = remove_ops(spec, {1})
        assert len(reduced.ops) == 3
        # op2 ("xor") referenced op1; op1's first operand was op0.
        assert reduced.ops[1] == OpSpec("xor", ("op0", "in0"))
        assert reduced.writes[0].value == "op1"  # renumbered from op2

    def test_chases_chains_of_removed_ops(self):
        spec = _chain_spec()
        reduced = remove_ops(spec, {0, 1, 2})
        assert len(reduced.ops) == 1
        assert reduced.writes[0].value == "in0"

    def test_remove_nothing_is_identity(self):
        spec = _chain_spec()
        assert remove_ops(spec, set()) == spec


class TestSyntheticShrink:
    def test_minimizes_to_the_failing_op(self):
        """With a predicate oracle ('fails while any mult survives'), the
        shrinker should strip the program down to essentially that op."""
        spec = generate_spec(0, max_ops=40)
        if not any(op.kind == "mult" for op in spec.ops):
            pytest.skip("seed 0 no longer generates a mult")

        def fails_on_mult(candidate):
            if any(op.kind == "mult" for op in candidate.ops):
                return OracleFailure("synthetic", "a mult survives")
            return None

        result = shrink(spec, OracleFailure("synthetic", "a mult survives"),
                        check=fails_on_mult)
        assert any(op.kind == "mult" for op in result.spec.ops)
        assert len(result.spec.ops) <= 2
        assert result.removed_ops > 0
        assert result.checks > 0

    def test_unreproducible_failure_returns_original(self):
        spec = _chain_spec()
        result = shrink(spec, OracleFailure("synthetic", "never reproduces"),
                        check=lambda candidate: None)
        assert result.spec == spec
        assert result.removed_ops == 0


class TestInjectedMiscompile:
    """The acceptance scenario: a broken rewrite pattern is caught, shrunk
    and persisted as a runnable reproducer."""

    @pytest.fixture()
    def broken_strength_reduction(self, monkeypatch):
        # The legacy pipeline calls rewrite_mult() directly with the full
        # rewrite; capping the worklist pass's term budget makes only the
        # fast pipeline skip x*2**k decompositions -> byte divergence.
        monkeypatch.setattr(StrengthReductionPass, "max_terms", 0)

    def test_fuzzer_finds_shrinks_and_reproduces(self, tmp_path,
                                                 broken_strength_reduction):
        report = run_fuzz(seed=0, count=10, max_ops=40,
                          out_dir=str(tmp_path), oracles=("pipeline",))
        assert not report.ok, "injected miscompile was not caught"
        failure = report.failures[0]
        assert failure.oracle == "pipeline"
        assert len(failure.spec.ops) <= 2, (
            f"reproducer not minimal: {failure.spec.ops}")
        assert failure.original_op_count > len(failure.spec.ops)
        assert failure.repro_path is not None

        # The reproducer script embeds the spec; executing its body (without
        # __main__) must expose SPEC, and replaying it fails while the bug
        # is injected...
        namespace = {}
        with open(failure.repro_path) as handle:
            exec(compile(handle.read(), failure.repro_path, "exec"), namespace)
        assert replay_spec(namespace["SPEC"], oracles=("pipeline",)) == 1

    def test_reproducer_heals(self, tmp_path):
        with pytest.MonkeyPatch.context() as patch:
            patch.setattr(StrengthReductionPass, "max_terms", 0)
            report = run_fuzz(seed=0, count=10, max_ops=40,
                              out_dir=str(tmp_path), oracles=("pipeline",))
            assert not report.ok
            spec_dict = report.failures[0].spec.to_dict()
            assert replay_spec(spec_dict, oracles=("pipeline",)) == 1
        # ... and passes again once the pattern is restored.
        assert replay_spec(spec_dict, oracles=("pipeline",)) == 0
