"""Differential sweep pinning the vector engine against the interpreted
reference over randomly generated programs.

The ``engines`` oracle grew a vector leg (bit-exact cycles, outputs and
interface counters, with a typed skip when no static steady state exists);
this suite drives it across fixed seeds — 25 programs on tier-1, 250 on the
``slow`` tier — plus the composed scenarios from :func:`Flow.from_scenario`
and an explicit data-dependent design that exercises the typed fallback to
the compiled engine instead of the fused run.

Failures name the seed; replay with
``python -m repro fuzz --seed <N> --count 1``.
"""

import pytest

from repro.flow import Flow
from repro.fuzz import check_program, generate_spec

#: Tier-1 sweep: 25 programs through the engines oracle (incl. vector leg).
TIER1_SEEDS = 25
#: Slow tier: 10 chunks x 25 seeds = 250 programs.
CHUNKS = 10
SEEDS_PER_CHUNK = 25


def sweep(seeds, max_ops=25):
    for seed in seeds:
        failure = check_program(generate_spec(seed, max_ops=max_ops),
                                oracles=("engines",))
        assert failure is None, (
            f"seed {seed} diverged — replay with "
            f"`python -m repro fuzz --seed {seed} --count 1`:\n"
            f"{failure.render()}")


@pytest.mark.tier1
def test_vector_differential_canary():
    sweep(range(TIER1_SEEDS))


@pytest.mark.slow
@pytest.mark.parametrize("chunk", range(CHUNKS))
def test_vector_differential_sweep(chunk):
    sweep(range(chunk * SEEDS_PER_CHUNK, (chunk + 1) * SEEDS_PER_CHUNK),
          max_ops=40)


#: Composed scenarios: multi-kernel graphs lowered through Flow.from_scenario.
SCENARIOS = [
    ("gemm_pipeline", {"size": 3}),
    ("histogram_cdf", {"pixels": 32, "bins": 8}),
    ("sorted_scan", {"size": 4}),
]


@pytest.mark.parametrize("scenario,parameters",
                         SCENARIOS, ids=[name for name, _ in SCENARIOS])
def test_composed_scenarios_are_bit_exact(scenario, parameters):
    flow = Flow.from_scenario(scenario, **parameters)
    reference = flow.simulate(seed=3, engine="interpreted")
    vector = flow.simulate(seed=3, engine="vector")
    assert dict(vector.provenance).get("fallback") is None, scenario
    assert vector.value.engine == "vector", scenario
    assert vector.value.run.cycles == reference.value.run.cycles
    assert vector.value.run.results == reference.value.run.results
    for name, memory in reference.value.run.memories.items():
        other = vector.value.run.memories[name]
        assert other.data == memory.data, (scenario, name)
        assert (other.reads, other.writes) == (memory.reads, memory.writes)


class TestNoSteadyStateFallback:
    """A data-dependent schedule has no static steady state: asking for the
    vector engine must produce a *typed* fall back to the compiled run, with
    provenance saying so — never a crash, never wrong data."""

    def build_flow(self):
        from repro.hir.build import DesignBuilder
        from repro.hir.types import MemrefType
        from repro.ir.types import I32

        design = DesignBuilder("dyn_design")
        out_type = MemrefType((8,), I32, port="w")
        with design.func("dyn", [("n", I32), ("out", out_type)],
                         stable_args=("n",)) as f:
            # Loop bound is the runtime argument %n — unknowable statically.
            with f.for_loop(0, f.arg("n"), 1, time=f.time,
                            iter_offset=1) as loop:
                delayed = f.delay(loop.iv, 1, time=loop.time)
                f.mem_write(delayed, f.arg("out"), [delayed],
                            time=loop.time, offset=1)
                f.yield_(loop.time, offset=1)
            f.return_()
        return Flow(design, scalar_args={"n": 8})

    def test_flow_falls_back_with_typed_provenance(self):
        outcome = self.build_flow().simulate(inputs={}, engine="vector")
        provenance = dict(outcome.provenance)
        assert provenance["engine"] == "compiled"
        assert provenance["fallback"] == "compiled"
        assert provenance["fallback_reason"] == "no-static-steady-state"
        assert outcome.value.run.memories["out"].data == list(range(8))

    def test_steady_state_of_raises_typed_error(self):
        from repro.sim.engine.vector import (VectorUnsupported,
                                             steady_state_of)
        flow = self.build_flow()
        design = flow.optimized().value
        with pytest.raises(VectorUnsupported):
            steady_state_of(design, flow.top)
