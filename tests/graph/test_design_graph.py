"""Unit tests for the dataflow-composition subsystem itself: graph
construction rules, static timing, the Flow ``compose`` stage and the
``python -m repro compose`` CLI."""

import pytest

from repro.flow import Flow, FlowConfig
from repro.graph import (
    DesignGraph,
    GraphError,
    analyze_function,
    build_scenario,
    register_scenario,
    scenario_names,
    unregister_scenario,
)
from repro.graph.scenarios import UnknownScenarioError
from repro.hir.ops import ConstantOp, FuncOp
from repro.kernels import build_kernel


def two_node_graph():
    graph = DesignGraph("pair")
    histogram = graph.add_kernel("histogram", pixels=16, bins=8)
    scan = graph.add_kernel("prefix_sum", size=8)
    graph.connect(histogram, "hist", scan, "xs")
    return graph


class TestConstruction:
    def test_duplicate_names_are_uniquified(self):
        graph = DesignGraph("dup")
        first = graph.add_kernel("prefix_sum", size=8)
        second = graph.add_kernel("prefix_sum", size=8)
        assert first.name == "prefix_sum"
        assert second.name == "prefix_sum2"
        assert set(graph.nodes) == {"prefix_sum", "prefix_sum2"}

    def test_unknown_node_port_rejected(self):
        graph = two_node_graph()
        with pytest.raises(GraphError, match="no interface"):
            graph.connect("histogram", "nope", "prefix_sum", "xs")

    def test_direction_mismatch_rejected(self):
        graph = DesignGraph("dir")
        a = graph.add_kernel("prefix_sum", size=8)
        b = graph.add_kernel("prefix_sum", size=8)
        with pytest.raises(GraphError, match="not an output"):
            graph.connect(a, "xs", b, "xs")
        with pytest.raises(GraphError, match="not an input"):
            graph.connect(a, "sums", b, "sums")

    def test_element_count_mismatch_rejected(self):
        graph = DesignGraph("shape")
        a = graph.add_kernel("prefix_sum", size=8)
        b = graph.add_kernel("prefix_sum", size=16)
        with pytest.raises(GraphError, match="different element counts"):
            graph.connect(a, "sums", b, "xs")

    def test_reshape_compatible_edge_allowed(self):
        graph = DesignGraph("reshape")
        transpose = graph.add_kernel("transpose", size=4)
        stencil = graph.add_kernel("stencil_1d", size=16)
        graph.connect(transpose, "Co", stencil, "Ai")  # (4,4) -> (16,)
        assert len(graph.edges) == 1

    def test_fan_out_rejected_with_guidance(self):
        graph = DesignGraph("fanout")
        a = graph.add_kernel("prefix_sum", size=8)
        b = graph.add_kernel("prefix_sum", size=8)
        c = graph.add_kernel("prefix_sum", size=8)
        graph.connect(a, "sums", b, "xs")
        with pytest.raises(GraphError, match="exactly one consumer"):
            graph.connect(a, "sums", c, "xs")

    def test_double_feed_rejected(self):
        graph = DesignGraph("feed")
        a = graph.add_kernel("prefix_sum", size=8)
        b = graph.add_kernel("prefix_sum", size=8)
        c = graph.add_kernel("prefix_sum", size=8)
        graph.connect(a, "sums", c, "xs")
        with pytest.raises(GraphError, match="already fed"):
            graph.connect(b, "sums", c, "xs")

    def test_unbound_scalar_argument_rejected(self):
        graph = DesignGraph("scalars")
        artifacts = build_kernel("stencil_1d", size=16)
        artifacts.scalar_args.clear()
        with pytest.raises(GraphError, match="scalar argument"):
            graph.add_node(artifacts)

    def test_scalar_bindings_default_to_artifacts(self):
        graph = DesignGraph("scalars_ok")
        node = graph.add_kernel("stencil_1d", size=16)
        assert node.scalars == {"w0": 3, "w1": 5}

    def test_cyclic_graph_rejected(self):
        graph = DesignGraph("loop")
        graph.add_kernel("histogram", pixels=8, bins=8)
        scan = graph.add_kernel("prefix_sum", size=8)
        graph.connect("histogram", "hist", scan, "xs")
        graph.connect(scan, "sums", "histogram", "img")
        with pytest.raises(GraphError, match="cycle"):
            graph.build()


class TestNaming:
    def test_exposed_interfaces_prefixed_by_node(self):
        artifacts = two_node_graph().build()
        assert set(artifacts.interfaces) == {"histogram_img",
                                             "prefix_sum_sums"}

    def test_expose_renames(self):
        graph = two_node_graph()
        graph.expose("histogram", "img", "image")
        graph.expose("prefix_sum", "sums", "cdf")
        assert set(graph.build().interfaces) == {"image", "cdf"}

    def test_expose_name_collision_rejected(self):
        graph = two_node_graph()
        graph.expose("histogram", "img", "x")
        with pytest.raises(GraphError, match="already taken"):
            graph.expose("prefix_sum", "sums", "x")


class TestSchedule:
    def test_consumer_starts_after_producer_quiet(self):
        graph = two_node_graph()
        schedule = graph.schedule()
        producer = schedule["histogram"]
        consumer = schedule["prefix_sum"]
        assert consumer.start > producer.start + producer.timing.last_activity
        assert consumer.start > producer.start + producer.timing.done

    def test_static_done_matches_simulation(self):
        """The timing analysis predicts the simulated done cycle exactly."""
        for kernel, params in (("transpose", {"size": 4}),
                               ("histogram", {"pixels": 16, "bins": 8}),
                               ("matvec", {"size": 4}),
                               ("prefix_sum", {"size": 8}),
                               ("gemm", {"size": 2})):
            artifacts = build_kernel(kernel, **params)
            func = artifacts.module.lookup(artifacts.top)
            timing = analyze_function(artifacts.module, func)
            run, _ = artifacts.simulate(seed=0)
            # run.cycles is 1-based (done seen during cycle index done).
            assert run.cycles == timing.done + 1, (kernel, run.cycles,
                                                  timing.done)

    def test_independent_branches_overlap(self):
        graph = DesignGraph("parallel")
        graph.add_kernel("prefix_sum", size=8, name="left")
        graph.add_kernel("prefix_sum", size=8, name="right")
        schedule = graph.schedule()
        assert schedule["left"].start == 0
        assert schedule["right"].start == 0

    def test_describe_schedule_renders(self):
        artifacts = two_node_graph().build()
        text = artifacts.describe_schedule()
        assert "histogram" in text and "prefix_sum" in text


class TestFlowComposeStage:
    def test_compose_cached_until_node_mutates(self):
        flow = Flow.from_graph(two_node_graph(),
                               config=FlowConfig(pipeline="none"))
        cold = flow.verilog()
        assert flow.compose().cached
        warm = flow.verilog()
        assert warm.cached
        constant = next(op for op in
                        flow.graph.nodes["prefix_sum"].artifacts.module.walk()
                        if isinstance(op, ConstantOp) and op.value > 1)
        original = constant.value
        constant.set_attr("value", original - 1)
        try:
            rebuilt = flow.verilog()
            assert not rebuilt.cached
            assert rebuilt.fingerprint != cold.fingerprint
        finally:
            constant.set_attr("value", original)
        restored = flow.verilog()
        assert restored.value.text == cold.value.text

    def test_direct_compose_call_does_not_starve_adoption(self):
        """hir() must adopt a recomposed module even when an intervening
        direct compose() call already served the rebuilt artifact."""
        graph = two_node_graph()
        flow = Flow.from_graph(graph, config=FlowConfig(pipeline="none"))
        flow.validate(seed=1)
        third = graph.add_kernel("prefix_sum", size=8)
        graph.connect("prefix_sum", "sums", third, "xs")
        composed = flow.compose().value          # rebuilds, 3 nodes
        assert len(composed.schedule) == 3
        outcome = flow.validate(seed=1).value    # must NOT run the old module
        assert outcome.ok
        assert sorted(flow.interfaces) == sorted(composed.interfaces)
        functions = [op.symbol_name for op in flow.module.walk()
                     if isinstance(op, FuncOp)]
        assert third.name in functions

    def test_graph_fingerprint_tracks_structure(self):
        first = two_node_graph()
        second = two_node_graph()
        assert first.fingerprint() == second.fingerprint()
        second.expose("histogram", "img", "image")
        assert first.fingerprint() != second.fingerprint()

    def test_compose_on_plain_flow_rejected(self):
        from repro.flow import FlowError
        flow = Flow.from_kernel("transpose", size=4)
        with pytest.raises(FlowError, match="DesignGraph"):
            flow.compose()

    def test_composed_module_is_multi_module_verilog(self):
        flow = Flow.from_graph(two_node_graph(),
                               config=FlowConfig(pipeline="none"))
        design = flow.design
        assert set(design.modules) == {"histogram", "prefix_sum", "pair_top"}
        assert design.top == "pair_top"
        functions = [op for op in flow.module.walk() if isinstance(op, FuncOp)]
        assert len(functions) == 3


class TestScenarioRegistry:
    def test_builtin_scenarios_listed(self):
        assert {"gemm_pipeline", "histogram_cdf",
                "sorted_scan"} <= set(scenario_names())

    def test_unknown_scenario_error_names_registry(self):
        with pytest.raises(UnknownScenarioError, match="gemm_pipeline"):
            build_scenario("nope")

    def test_register_unregister_roundtrip(self):
        register_scenario("tmp_pair", lambda: two_node_graph())
        try:
            assert build_scenario("tmp_pair").name == "pair"
            with pytest.raises(ValueError, match="already registered"):
                register_scenario("tmp_pair", lambda: two_node_graph())
        finally:
            unregister_scenario("tmp_pair")
        assert "tmp_pair" not in scenario_names()


class TestComposeCLI:
    def test_compose_list(self, capsys):
        from repro.__main__ import main
        assert main(["compose", "--list"]) == 0
        out = capsys.readouterr().out
        assert "gemm_pipeline" in out and "histogram_cdf" in out

    def test_compose_validates_a_scenario(self, capsys):
        from repro.__main__ import main
        assert main(["compose", "histogram_cdf", "-p", "pixels=16",
                     "-p", "bins=8", "--pipeline", "none"]) == 0
        assert "ok" in capsys.readouterr().out

    def test_compose_unknown_scenario_exits_2(self, capsys):
        from repro.__main__ import main
        assert main(["compose", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err
