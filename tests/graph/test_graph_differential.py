"""Acceptance bar of the composition PR: every new kernel and every composed
example graph produces lockstep-identical traces across the interpreted,
compiled and batched engines — and matches its (chained) numpy reference.

The ``differential`` engine runs the interpreted and compiled simulators in
lockstep, raising on the first per-signal divergence; the batched engine is
checked lane for lane against independent single-lane runs.  Small problem
sizes run in tier 1; a broader size/seed matrix is in the ``slow`` tier.
"""

import numpy as np
import pytest

from repro.flow import Flow, FlowConfig, outputs_match

#: (kernel, params) — every workload added by this PR, at tier-1 sizes.
NEW_KERNELS = [
    ("matvec", {"size": 4}),
    ("prefix_sum", {"size": 8}),
    ("spmv", {"rows": 4, "nnz": 2}),
    ("sorting_network", {"size": 4}),
]

#: (scenario, params) — the composed example graphs, at tier-1 sizes.
SCENARIOS = [
    ("gemm_pipeline", {"size": 3}),
    ("histogram_cdf", {"pixels": 32, "bins": 8}),
    ("sorted_scan", {"size": 4}),
]


def assert_lockstep(flow, seeds):
    """Differential single runs + batched lanes vs the numpy reference."""
    # Interpreted vs compiled in lockstep (DivergenceError on mismatch).
    for seed in seeds:
        outcome = flow.validate(seed=seed, engine="differential").value
        assert outcome.ok, (flow.name, seed, "reference mismatch")
    # Batched engine, lane for lane against the reference and the
    # single-run cycle counts.
    batch = flow.simulate_batch(seeds).value
    for lane, inputs in enumerate(batch.inputs_per_lane):
        assert bool(batch.run.done[lane]), (flow.name, lane, "never finished")
        assert outputs_match(flow.reference(inputs),
                             lambda name: batch.memory_array(name, lane),
                             flow.output_warmup), (flow.name, lane)
    single = flow.simulate(seed=seeds[0], engine="interpreted").value
    assert int(batch.run.cycles[0]) == single.run.cycles


@pytest.mark.tier1
@pytest.mark.parametrize("kernel,params", NEW_KERNELS,
                         ids=[k for k, _ in NEW_KERNELS])
def test_new_kernel_lockstep(kernel, params):
    flow = Flow.from_kernel(kernel, config=FlowConfig(pipeline="none"),
                            **params)
    assert_lockstep(flow, [0, 1, 2])


@pytest.mark.tier1
@pytest.mark.parametrize("scenario,params", SCENARIOS,
                         ids=[s for s, _ in SCENARIOS])
def test_composed_graph_lockstep(scenario, params):
    flow = Flow.from_scenario(scenario, config=FlowConfig(pipeline="none"),
                              **params)
    assert_lockstep(flow, [0, 1, 2])


@pytest.mark.parametrize("scenario,params", SCENARIOS,
                         ids=[s for s, _ in SCENARIOS])
def test_composed_graph_optimized_pipeline(scenario, params):
    """The full auto-optimization pipeline preserves composed behaviour."""
    flow = Flow.from_scenario(scenario, config=FlowConfig(pipeline="optimize",
                                                          verify_each=False),
                              **params)
    outcome = flow.validate(seed=1, engine="differential").value
    assert outcome.ok


def test_composed_outputs_match_chained_kernels():
    """A composed graph equals running its kernels one by one on the host."""
    flow = Flow.from_scenario("histogram_cdf", pixels=32, bins=8,
                              config=FlowConfig(pipeline="none"))
    outcome = flow.simulate(seed=5).value
    image = np.asarray(outcome.inputs["img"])
    hist = np.bincount(image, minlength=8)[:8]
    assert np.array_equal(outcome.memory_array("cdf"), np.cumsum(hist))


@pytest.mark.slow
@pytest.mark.parametrize("kernel,params", [
    ("matvec", {"size": 8}),
    ("prefix_sum", {"size": 32}),
    ("spmv", {"rows": 8, "nnz": 4}),
    ("sorting_network", {"size": 8}),
], ids=["matvec", "prefix_sum", "spmv", "sorting_network"])
def test_new_kernel_lockstep_larger(kernel, params):
    flow = Flow.from_kernel(kernel, config=FlowConfig(pipeline="none"),
                            **params)
    assert_lockstep(flow, list(range(6)))


@pytest.mark.slow
@pytest.mark.parametrize("scenario,params", [
    ("gemm_pipeline", {"size": 4}),
    ("histogram_cdf", {"pixels": 64, "bins": 16}),
    ("sorted_scan", {"size": 8}),
], ids=["gemm_pipeline", "histogram_cdf", "sorted_scan"])
def test_composed_graph_lockstep_larger(scenario, params):
    flow = Flow.from_scenario(scenario, config=FlowConfig(pipeline="none"),
                              **params)
    assert_lockstep(flow, list(range(4)))
