"""Tests for the Python design builder and the schedule analysis."""

import pytest

from repro.ir import verify
from repro.ir.types import I8, I32
from repro.hir import (
    DesignBuilder,
    MemrefType,
    TimeStamp,
    UNBOUNDED,
    analyse,
)
from repro.hir.ops import ConstantOp, DelayOp, ForOp, MemReadOp, MemWriteOp


def build_transpose(size=4):
    design = DesignBuilder("d")
    a = MemrefType((size, size), I32, port="r")
    c = MemrefType((size, size), I32, port="w")
    with design.func("transpose", [("Ai", a), ("Co", c)]) as f:
        with f.for_loop(0, size, 1, time=f.time, iter_offset=1, iv_name="i") as i_loop:
            with f.for_loop(0, size, 1, time=i_loop.time, iter_offset=1,
                            iv_name="j") as j_loop:
                v = f.mem_read(f.arg("Ai"), [i_loop.iv, j_loop.iv], time=j_loop.time)
                jd = f.delay(j_loop.iv, 1, time=j_loop.time)
                f.mem_write(v, f.arg("Co"), [jd, i_loop.iv], time=j_loop.time, offset=1)
                f.yield_(j_loop.time, offset=1)
            f.yield_(j_loop.done, offset=1)
        f.return_()
    return design


class TestDesignBuilder:
    def test_produces_verified_ir(self):
        verify(build_transpose().module)

    def test_constants_are_cached_and_hoisted(self):
        design = DesignBuilder("d")
        with design.func("f", []) as f:
            with f.for_loop(0, 4, 1, time=f.time) as loop:
                f.add(f.constant(3, I32), f.constant(3, I32))
                f.yield_(loop.time, offset=1)
            with f.for_loop(0, 4, 1, time=f.time, iv_name="k") as loop2:
                f.add(f.constant(3, I32), loop2.iv)
                f.yield_(loop2.time, offset=1)
            f.return_()
        verify(design.module)  # hoisted constants dominate both loops
        func = design.module.lookup("f")
        constants = [op for op in func.walk() if isinstance(op, ConstantOp)
                     and op.results[0].type == I32 and op.value == 3]
        assert len(constants) == 1

    def test_arg_lookup(self):
        design = build_transpose()
        func = design.module.lookup("transpose")
        assert func.arg_names == ("Ai", "Co")

    def test_alloc_ports(self):
        design = DesignBuilder("d")
        with design.func("f", []) as f:
            reader, writer = f.alloc((8,), I32, ports=("r", "w"), name="buf")
            assert isinstance(reader.type, MemrefType) and reader.type.can_read
            assert writer.type.can_write
            f.return_()

    def test_extern_func_declaration(self):
        design = DesignBuilder("d")
        ip = design.extern_func("mult_3stage", [I32, I32], [I32], result_delays=[3])
        assert ip.is_external
        assert design.module.lookup("mult_3stage") is ip

    def test_call_unknown_callee(self):
        design = DesignBuilder("d")
        with design.func("f", [("x", I32)]) as f:
            with pytest.raises(ValueError):
                f.call("nope", [f.arg("x")], time=f.time)
            f.return_()

    def test_stable_args_flag(self):
        design = DesignBuilder("d")
        with design.func("f", [("x", I32), ("w", I32)], stable_args=("w",)) as f:
            f.return_()
        func = design.module.lookup("f")
        assert func.stable_args == (False, True)

    def test_iv_type_helper(self):
        design = DesignBuilder("d")
        with design.func("f", []) as f:
            assert f.iv_type(15).width == 5
            assert f.iv_type(16).width == 6
            f.return_()


class TestTimeStamp:
    def test_advanced(self):
        design = DesignBuilder("d")
        with design.func("f", []) as f:
            stamp = TimeStamp(f.time, 2)
            assert stamp.advanced(3).offset == 5
            assert stamp.advanced(3).root is f.time
            f.return_()

    def test_describe(self):
        design = DesignBuilder("d")
        with design.func("f", []) as f:
            assert TimeStamp(f.time, 0).describe() == "%t"
            assert "+" in TimeStamp(f.time, 4).describe()
            f.return_()


class TestScheduleAnalysis:
    def test_transpose_schedule(self):
        module = build_transpose().module
        func = module.lookup("transpose")
        info = analyse(func)
        reads = [op for op in func.walk() if isinstance(op, MemReadOp)]
        writes = [op for op in func.walk() if isinstance(op, MemWriteOp)]
        inner = [op for op in func.walk() if isinstance(op, ForOp)][1]

        # The read starts at %tj + 0 and its data is valid at %tj + 1.
        assert info.start_of(reads[0]) == TimeStamp(inner.iter_time, 0)
        assert info.time_of(reads[0].results[0]) == TimeStamp(inner.iter_time, 1)
        # The write starts one cycle later.
        assert info.start_of(writes[0]) == TimeStamp(inner.iter_time, 1)

    def test_register_read_is_combinational(self):
        design = DesignBuilder("d")
        with design.func("f", []) as f:
            reader, writer = f.alloc((2,), I32, ports=("r", "w"), packing=[])
            f.mem_write(1, writer, [0], time=f.time)
            value = f.mem_read(reader, [0], time=f.time, offset=1)
            f.return_()
        func = design.module.lookup("f")
        info = analyse(func)
        read = next(op for op in func.walk() if isinstance(op, MemReadOp))
        assert info.time_of(read.results[0]).offset == 1  # latency 0

    def test_delay_advances_validity(self):
        design = DesignBuilder("d")
        with design.func("f", [("x", I32)]) as f:
            delayed = f.delay(f.arg("x"), 3, time=f.time)
            f.return_()
        func = design.module.lookup("f")
        info = analyse(func)
        delay = next(op for op in func.walk() if isinstance(op, DelayOp))
        assert info.time_of(delay.results[0]) == TimeStamp(func.time_arg, 3)

    def test_induction_var_window_matches_ii(self):
        design = DesignBuilder("d")
        with design.func("f", []) as f:
            with f.for_loop(0, 4, 1, time=f.time) as loop:
                f.yield_(loop.time, offset=3)
            f.return_()
        func = design.module.lookup("f")
        info = analyse(func)
        loop = next(op for op in func.walk() if isinstance(op, ForOp))
        assert info.window_of(loop.induction_var) == 2

    def test_stable_args_have_unbounded_window(self):
        design = DesignBuilder("d")
        with design.func("f", [("x", I32), ("w", I32)], stable_args=("w",)) as f:
            f.return_()
        func = design.module.lookup("f")
        info = analyse(func)
        assert info.window_of(func.arguments[1]) == UNBOUNDED
        assert info.window_of(func.arguments[0]) == 0

    def test_memrefs_and_constants_are_timeless(self):
        module = build_transpose().module
        func = module.lookup("transpose")
        info = analyse(func)
        assert info.is_timeless(func.arguments[0])
        constant = next(op for op in func.walk() if isinstance(op, ConstantOp))
        assert info.is_timeless(constant.results[0])

    def test_is_valid_at_window(self):
        design = DesignBuilder("d")
        with design.func("f", []) as f:
            with f.for_loop(0, 4, 1, time=f.time, iv_type=I8) as loop:
                f.yield_(loop.time, offset=2)
            f.return_()
        func = design.module.lookup("f")
        info = analyse(func)
        loop = next(op for op in func.walk() if isinstance(op, ForOp))
        iv = loop.induction_var
        assert info.is_valid_at(iv, TimeStamp(loop.iter_time, 0))
        assert info.is_valid_at(iv, TimeStamp(loop.iter_time, 1))
        assert not info.is_valid_at(iv, TimeStamp(loop.iter_time, 2))
        assert not info.is_valid_at(iv, TimeStamp(func.time_arg, 0))

    def test_call_result_delay(self):
        design = DesignBuilder("d")
        design.extern_func("ip", [I32], [I32], result_delays=[4])
        with design.func("f", [("x", I32)]) as f:
            result = f.call("ip", [f.arg("x")], time=f.time, offset=1)[0]
            f.return_()
        func = design.module.lookup("f")
        info = analyse(func)
        assert info.time_of(result) == TimeStamp(func.time_arg, 5)

    def test_external_function_analysis_is_empty(self):
        design = DesignBuilder("d")
        ip = design.extern_func("ip", [I32], [I32])
        info = analyse(ip)
        assert not info.op_start
