"""Tests for HIR operations (Table 2 inventory, accessors, op verifiers)."""

import pytest

from repro.ir import VerificationError, verify
from repro.ir.types import I1, I32
from repro.hir import (
    COMPUTE_OPS,
    CONTROL_FLOW_OPS,
    MEMORY_OPS,
    SCHEDULING_OPS,
    DesignBuilder,
    MemrefType,
)
from repro.hir.ops import (
    AddOp,
    AllocOp,
    CallOp,
    CmpOp,
    ConstantOp,
    DelayOp,
    ForOp,
    FuncOp,
    MemReadOp,
    MemWriteOp,
    MultOp,
    ReturnOp,
    SelectOp,
    UnrollForOp,
    YieldOp,
    constant_value,
)
from repro.hir.types import CONST, TIME


class TestTable2Inventory:
    """The dialect provides the op groups listed in Table 2 of the paper."""

    def test_control_flow_ops(self):
        names = {op.OPERATION_NAME for op in CONTROL_FLOW_OPS}
        assert names == {"hir.func", "hir.for", "hir.unroll_for", "hir.return",
                         "hir.yield"}

    def test_compute_ops_include_add_and_mult(self):
        names = {op.OPERATION_NAME for op in COMPUTE_OPS}
        assert {"hir.add", "hir.mult", "hir.call"} <= names

    def test_memory_ops(self):
        names = {op.OPERATION_NAME for op in MEMORY_OPS}
        assert names == {"hir.alloc", "hir.mem_read", "hir.mem_write"}

    def test_scheduling_ops(self):
        names = {op.OPERATION_NAME for op in SCHEDULING_OPS}
        assert names == {"hir.constant", "hir.delay"}

    def test_all_ops_have_unique_names(self):
        all_ops = CONTROL_FLOW_OPS + COMPUTE_OPS + MEMORY_OPS + SCHEDULING_OPS
        names = [op.OPERATION_NAME for op in all_ops]
        assert len(names) == len(set(names))


class TestFuncOp:
    def test_signature_accessors(self):
        func = FuncOp("mac", [I32, I32], [I32], arg_names=["a", "b"],
                      result_delays=[3])
        assert func.symbol_name == "mac"
        assert func.arg_names == ("a", "b")
        assert func.result_delays == (3,)
        assert len(func.arguments) == 2
        assert func.time_arg.type == TIME

    def test_external_function_has_no_body(self):
        func = FuncOp("ip", [I32], [I32], external=True)
        assert func.is_external
        assert func.arguments == []
        verify_ok = True
        try:
            func.verify_op()
        except VerificationError:
            verify_ok = False
        assert verify_ok

    def test_stable_args_default_false(self):
        func = FuncOp("f", [I32, I32], [])
        assert func.stable_args == (False, False)

    def test_mismatched_metadata_rejected(self):
        with pytest.raises(ValueError):
            FuncOp("f", [I32], [], arg_names=["a", "b"])
        with pytest.raises(ValueError):
            FuncOp("f", [I32], [], arg_delays=[0, 0])
        with pytest.raises(ValueError):
            FuncOp("f", [I32], [I32], result_delays=[0, 0])

    def test_return_type_mismatch_detected(self):
        func = FuncOp("f", [I32], [I32])
        func.body.append(ReturnOp([]))
        with pytest.raises(VerificationError):
            verify(func)


class TestLoops:
    def _loop(self, with_yield=True, iv_type=I32):
        design = DesignBuilder("d")
        with design.func("f", [("x", I32)]) as f:
            with f.for_loop(0, 10, 1, time=f.time, iv_type=iv_type) as loop:
                if with_yield:
                    f.yield_(loop.time, offset=1)
            f.return_()
        func = design.module.lookup("f")
        return design.module, next(op for op in func.walk() if isinstance(op, ForOp))

    def test_accessors(self):
        _, loop = self._loop()
        assert constant_value(loop.lower_bound) == 0
        assert constant_value(loop.upper_bound) == 10
        assert constant_value(loop.step) == 1
        assert loop.induction_var.type == I32
        assert loop.iter_time.type == TIME
        assert loop.done_time.type == TIME

    def test_initiation_interval(self):
        _, loop = self._loop()
        assert loop.initiation_interval() == 1

    def test_static_trip_count(self):
        _, loop = self._loop()
        assert loop.static_trip_count() == 10

    def test_missing_yield_rejected(self):
        module, _ = self._loop(with_yield=False)
        with pytest.raises(VerificationError, match="hir.yield"):
            verify(module)

    def test_set_iv_type(self):
        _, loop = self._loop()
        from repro.ir.types import IntegerType
        loop.set_iv_type(IntegerType(5))
        assert loop.iv_type == IntegerType(5)

    def test_unroll_for_iterations(self):
        design = DesignBuilder("d")
        with design.func("f", []) as f:
            with f.unroll_for(0, 8, 2, time=f.time) as loop:
                f.yield_(loop.time)
            f.return_()
        unroll = next(op for op in design.module.walk()
                      if isinstance(op, UnrollForOp))
        assert unroll.iterations() == [0, 2, 4, 6]
        assert unroll.induction_var.type == CONST

    def test_unroll_for_bad_step(self):
        time_holder = FuncOp("f", [], [])
        with pytest.raises(VerificationError):
            op = UnrollForOp(0, 4, 0, time_holder.time_arg)
            op.verify_op()

    def test_yield_outside_loop_rejected(self):
        func = FuncOp("f", [], [])
        func.body.append(YieldOp(func.time_arg, 1))
        func.body.append(ReturnOp())
        with pytest.raises(VerificationError, match="nested"):
            verify(func)


class TestComputeOps:
    def test_evaluate(self):
        a = ConstantOp(6, I32).results[0]
        b = ConstantOp(7, I32).results[0]
        assert AddOp(a, b).evaluate(6, 7) == 13
        assert MultOp(a, b).evaluate(6, 7) == 42

    def test_cmp_produces_i1(self):
        a = ConstantOp(1, I32).results[0]
        cmp = CmpOp("lt", a, a)
        assert cmp.results[0].type == I1
        assert cmp.evaluate(3, 4) == 1
        assert cmp.evaluate(4, 3) == 0

    def test_cmp_invalid_predicate(self):
        a = ConstantOp(1, I32).results[0]
        with pytest.raises(ValueError):
            CmpOp("???", a, a)

    def test_select_result_type(self):
        c = ConstantOp(1, I1).results[0]
        a = ConstantOp(2, I32).results[0]
        b = ConstantOp(3, I32).results[0]
        assert SelectOp(c, a, b).results[0].type == I32

    def test_commutativity_flags(self):
        assert AddOp.COMMUTATIVE and MultOp.COMMUTATIVE
        from repro.hir.ops import SubOp, ShlOp
        assert not SubOp.COMMUTATIVE and not ShlOp.COMMUTATIVE

    def test_constant_value_helper(self):
        c = ConstantOp(5)
        assert constant_value(c.results[0]) == 5
        func = FuncOp("f", [I32], [])
        assert constant_value(func.arguments[0]) is None


class TestMemoryOps:
    def test_alloc_port_mismatch_rejected(self):
        ports = [MemrefType((4,), I32, "r"), MemrefType((8,), I32, "w")]
        with pytest.raises(VerificationError):
            AllocOp(ports).verify_op()

    def test_alloc_accessors(self):
        alloc = AllocOp([MemrefType((4,), I32, "r"), MemrefType((4,), I32, "w")],
                        mem_kind="bram")
        assert alloc.mem_kind == "bram"
        assert len(alloc.ports) == 2
        alloc.verify_op()

    def test_read_through_write_port_rejected(self):
        func = FuncOp("f", [MemrefType((4,), I32, "w")], [])
        index = ConstantOp(0)
        func.body.append(index)
        read = MemReadOp(func.arguments[0], [index.results[0]], func.time_arg)
        func.body.append(read)
        func.body.append(ReturnOp())
        with pytest.raises(VerificationError, match="cannot read"):
            verify(func)

    def test_write_through_read_port_rejected(self):
        func = FuncOp("f", [MemrefType((4,), I32, "r")], [])
        index = ConstantOp(0)
        value = ConstantOp(1, I32)
        func.body.append(index)
        func.body.append(value)
        func.body.append(MemWriteOp(value.results[0], func.arguments[0],
                                    [index.results[0]], func.time_arg))
        func.body.append(ReturnOp())
        with pytest.raises(VerificationError, match="cannot write"):
            verify(func)

    def test_wrong_index_count_rejected(self):
        func = FuncOp("f", [MemrefType((4, 4), I32, "r")], [])
        index = ConstantOp(0)
        func.body.append(index)
        func.body.append(MemReadOp(func.arguments[0], [index.results[0]],
                                   func.time_arg))
        func.body.append(ReturnOp())
        with pytest.raises(VerificationError, match="indices"):
            verify(func)

    def test_distributed_dim_requires_constant_index(self):
        func = FuncOp("f", [MemrefType((4,), I32, "r", packing=()), I32], [])
        func.body.append(MemReadOp(func.arguments[0], [func.arguments[1]],
                                   func.time_arg))
        func.body.append(ReturnOp())
        with pytest.raises(VerificationError, match="compile-time constant"):
            verify(func)


class TestDelayAndCall:
    def test_delay_accessors(self):
        func = FuncOp("f", [I32], [])
        delay = DelayOp(func.arguments[0], 3, func.time_arg, offset=1)
        assert delay.delay == 3
        assert delay.offset == 1
        assert delay.results[0].type == I32

    def test_negative_delay_rejected(self):
        func = FuncOp("f", [I32], [])
        with pytest.raises(VerificationError):
            DelayOp(func.arguments[0], -1, func.time_arg).verify_op()

    def test_call_result_delays_checked(self):
        func = FuncOp("f", [I32], [])
        call = CallOp("ip", [func.arguments[0]], [I32, I32], func.time_arg,
                      result_delays=[1])
        with pytest.raises(VerificationError, match="result_delays"):
            call.verify_op()

    def test_call_accessors(self):
        func = FuncOp("f", [I32], [])
        call = CallOp("ip", [func.arguments[0]], [I32], func.time_arg, offset=2,
                      result_delays=[3])
        assert call.callee == "ip"
        assert call.offset == 2
        assert call.result_delays == (3,)
        assert call.args == [func.arguments[0]]
        assert call.time_operand is func.time_arg
