"""Tests for HIR types, especially the memref banking semantics (Figure 3)."""

import pytest
from hypothesis import given, strategies as st

from repro.ir.errors import ParseError
from repro.ir.types import I8, I32
from repro.hir.types import CONST, TIME, ConstType, MemrefType, TimeType, parse_memref_body


class TestBasicTypes:
    def test_const_and_time_strings(self):
        assert str(CONST) == "!hir.const"
        assert str(TIME) == "!hir.time"

    def test_singleton_equality(self):
        assert ConstType() == CONST
        assert TimeType() == TIME


class TestMemrefConstruction:
    def test_default_is_fully_packed(self):
        m = MemrefType((16, 16), I32)
        assert m.packed_dims() == (0, 1)
        assert m.distributed_dims() == ()
        assert m.num_banks == 1
        assert m.elements_per_bank == 256

    def test_fully_distributed(self):
        m = MemrefType((4,), I32, packing=())
        assert m.num_banks == 4
        assert m.elements_per_bank == 1
        assert m.is_register_implemented

    def test_figure3_layout(self):
        """!hir.memref<3*2*i32, packing=[1]> -> two banks of three elements."""
        m = MemrefType((3, 2), I32, packing=(1,))
        assert m.num_banks == 2
        assert m.elements_per_bank == 3
        assert [m.bank_of((i, 0)) for i in range(3)] == [0, 0, 0]
        assert [m.bank_of((i, 1)) for i in range(3)] == [1, 1, 1]
        assert [m.offset_in_bank((i, 0)) for i in range(3)] == [0, 1, 2]

    def test_read_latency(self):
        assert MemrefType((2,), I32, packing=()).read_latency == 0
        assert MemrefType((16,), I32).read_latency == 1

    def test_ports(self):
        assert MemrefType((4,), I32, port="r").can_read
        assert not MemrefType((4,), I32, port="r").can_write
        assert MemrefType((4,), I32, port="w").can_write
        rw = MemrefType((4,), I32, port="rw")
        assert rw.can_read and rw.can_write

    def test_with_port(self):
        m = MemrefType((4,), I32, port="r")
        assert m.with_port("w").port == "w"
        assert m.with_port("w").shape == m.shape

    def test_address_width(self):
        assert MemrefType((16,), I32).address_width == 4
        assert MemrefType((17,), I32).address_width == 5
        assert MemrefType((2,), I32, packing=()).address_width == 0

    def test_num_elements(self):
        assert MemrefType((3, 5), I8).num_elements == 15

    @pytest.mark.parametrize("bad", [
        {"shape": ()},
        {"shape": (0,)},
        {"shape": (-1, 4)},
        {"shape": (4,), "port": "x"},
        {"shape": (4,), "packing": (1,)},
        {"shape": (4, 4), "packing": (0, 0)},
    ])
    def test_invalid_memrefs_rejected(self, bad):
        with pytest.raises(ValueError):
            MemrefType(bad.get("shape"), I32, port=bad.get("port", "r"),
                       packing=bad.get("packing"))

    def test_bank_of_bounds_checked(self):
        m = MemrefType((3, 2), I32, packing=(1,))
        with pytest.raises(ValueError):
            m.bank_of((3, 0))
        with pytest.raises(ValueError):
            m.bank_of((0,))


class TestMemrefParsing:
    def test_simple(self):
        m = parse_memref_body("16 * 16 * i32 , r")
        assert m == MemrefType((16, 16), I32, port="r")

    def test_packing(self):
        m = parse_memref_body("2 * i32 , r , packing = [ ]")
        assert m.packing == ()
        assert m.is_register_implemented

    def test_packing_values(self):
        m = parse_memref_body("3 * 2 * i32 , w , packing = [ 1 ]")
        assert m.packing == (1,)
        assert m.port == "w"

    def test_str_parse_round_trip(self):
        for m in (MemrefType((8,), I32), MemrefType((3, 2), I8, "w", (1,)),
                  MemrefType((2, 2), I32, "rw", ())):
            body = str(m)[len("!hir.memref<"):-1]
            assert parse_memref_body(body) == m

    @pytest.mark.parametrize("bad", ["", "i32, r", "4 * i32, q", "4 * i32, r, banks=2"])
    def test_malformed_bodies(self, bad):
        with pytest.raises(ParseError):
            parse_memref_body(bad)


@given(shape=st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=3))
def test_every_element_maps_to_exactly_one_bank_slot(shape):
    """Property: (bank, offset) addressing is a bijection over the elements."""
    shape = tuple(shape)
    packing = tuple(range(0, len(shape), 2))  # pack every other dim (from right)
    m = MemrefType(shape, I32, packing=packing)
    seen = set()
    import itertools
    for indices in itertools.product(*(range(extent) for extent in shape)):
        key = (m.bank_of(indices), m.offset_in_bank(indices))
        assert key not in seen
        seen.add(key)
    assert len(seen) == m.num_elements
    assert m.num_banks * m.elements_per_bank == m.num_elements
