"""Tests for the baseline HLS compiler driver, DSE and RTL generation."""


from repro.hls import SwBuilder, Param, Var, compile_program
from repro.hls.dse import collect_innermost_loops, explore_loop
from repro.kernels import transpose, histogram, stencil1d
from repro.resources import estimate_resources
from repro.verilog.ast import MemoryDecl, RegDecl


class TestDSE:
    def test_explores_multiple_candidates(self):
        program = transpose.build_hls(8)
        loop, _ = collect_innermost_loops(program.function("transpose").body)[0]
        exploration = explore_loop(loop, array_ports={"Ai": 1, "Co": 1})
        assert exploration.evaluations >= 8
        assert exploration.chosen is not None

    def test_honours_requested_ii(self):
        program = transpose.build_hls(8)
        loop, _ = collect_innermost_loops(program.function("transpose").body)[0]
        exploration = explore_loop(loop)
        assert exploration.chosen.initiation_interval >= 1

    def test_collect_innermost_loops_nested(self):
        program = transpose.build_hls(8)
        loops = collect_innermost_loops(program.function("transpose").body)
        assert len(loops) == 1
        assert loops[0][0].var == "j"
        assert loops[0][1] == 1  # nesting depth


class TestCompilerDriver:
    def test_report_contains_loops_and_phases(self):
        result = compile_program(transpose.build_hls(8), "transpose")
        assert result.report.function == "transpose"
        assert len(result.report.loops) == 1
        assert result.report.loops[0].initiation_interval == 1
        assert set(result.report.phase_seconds) >= {
            "frontend", "dependence-analysis", "design-space-exploration",
            "scheduling-and-binding", "rtl-generation", "rtl-elaboration"}
        assert result.seconds > 0

    def test_histogram_update_loop_ii_reflects_recurrence(self):
        result = compile_program(histogram.build_hls(32, 32), "histogram")
        update = [loop for loop in result.report.loops if loop.name == "p"][0]
        assert update.initiation_interval >= 2

    def test_loop_report_total_latency(self):
        result = compile_program(transpose.build_hls(8), "transpose")
        loop = result.report.loops[0]
        assert loop.total_latency >= loop.trip_count

    def test_dse_can_be_disabled(self):
        result = compile_program(transpose.build_hls(8), "transpose",
                                 dse_enabled=False)
        assert result.report.dse_evaluations <= 2

    def test_elaboration_reports_rtl_and_area(self):
        result = compile_program(transpose.build_hls(8), "transpose")
        assert result.report.rtl_lines > 10
        assert result.report.estimated_resources["FF"] > 0

    def test_straight_line_function_compiles(self):
        sw = SwBuilder("p")
        function = sw.function("copy3", [
            Param("A", shape=(8,), direction="in"),
            Param("B", shape=(8,), direction="out"),
        ])
        function.body = [sw.load("x", "A", 0), sw.store("B", Var("x"), 0)]
        result = compile_program(sw.program, "copy3")
        assert "copy3" in result.design.modules


class TestGeneratedRTLStructure:
    def test_handshake_and_interfaces_present(self):
        result = compile_program(transpose.build_hls(8), "transpose")
        module = result.design.module("transpose")
        ports = {p.name for p in module.ports}
        assert {"ap_start", "ap_done", "ap_idle", "ap_ready"} <= ports
        assert {"Ai_addr", "Ai_rd_data", "Co_wr_data"} <= ports

    def test_local_arrays_become_memories(self):
        result = compile_program(histogram.build_hls(32, 32), "histogram")
        module = result.design.module("histogram")
        assert module.items_of_type(MemoryDecl)

    def test_loop_counters_are_32_bit_by_default(self):
        result = compile_program(transpose.build_hls(8), "transpose")
        module = result.design.module("transpose")
        counters = [item for item in module.items
                    if isinstance(item, RegDecl) and item.name.endswith("_i")]
        assert counters and all(reg.width == 32 for reg in counters)

    def test_manual_precision_narrows_counters(self):
        result = compile_program(transpose.build_hls(8, manual_precision=True),
                                 "transpose")
        module = result.design.module("transpose")
        counters = [item for item in module.items
                    if isinstance(item, RegDecl) and item.name.endswith("_i")]
        assert counters and all(reg.width < 32 for reg in counters)

    def test_manual_precision_reduces_resources(self):
        base = compile_program(transpose.build_hls(16), "transpose")
        manual = compile_program(transpose.build_hls(16, manual_precision=True),
                                 "transpose")
        assert estimate_resources(manual.design).ff <= estimate_resources(base.design).ff

    def test_stencil_dsp_parity_with_hir(self):
        """Both compilers instantiate the same number of multipliers (Table 5)."""
        from repro.passes import optimization_pipeline
        from repro.verilog import generate_verilog
        hls_result = compile_program(stencil1d.build_hls(32), "stencil_1d")
        artifacts = stencil1d.build(32)
        optimization_pipeline(verify_each=False).run(artifacts.module)
        hir_design = generate_verilog(artifacts.module, top="stencil_1d").design
        assert (estimate_resources(hls_result.design).as_dict()["DSP"]
                == estimate_resources(hir_design).as_dict()["DSP"] == 6)
