"""Golden tests for the DSE fast path: memoization, pruning, parallelism.

Every combination of :class:`HLSOptions` must pick the same schedules and
emit byte-identical Verilog as the seed-equivalent (serial, unpruned,
unmemoized) sweep — that is the fast path's contract.
"""

import pytest

from repro.hls import (
    HLSOptions,
    clear_schedule_memo,
    compile_program,
    explore_loop,
    graph_signature,
    schedule_memo_size,
)
from repro.hls.dse import collect_innermost_loops
from repro.hls.scheduling import DFGBuilder
from repro.kernels import build_kernel
from repro.verilog.emitter import emit_design

KERNEL_PARAMS = {
    "transpose": {"size": 8},
    "stencil_1d": {"size": 32},
    "histogram": {"pixels": 64, "bins": 64},
    "gemm": {"size": 4},
    "convolution": {"size": 8},
}


def _compile(kernel, options):
    clear_schedule_memo()
    artifacts = build_kernel(kernel, **KERNEL_PARAMS[kernel])
    result = compile_program(artifacts.hls_program, artifacts.hls_function,
                             options=options)
    return emit_design(result.design), result.report


@pytest.mark.parametrize("kernel", sorted(KERNEL_PARAMS))
def test_fast_path_matches_seed_bit_for_bit(kernel):
    seed_text, _ = _compile(kernel, HLSOptions.seed_equivalent())
    fast_text, fast_report = _compile(kernel, HLSOptions())
    assert fast_text == seed_text
    # The fast path really did less work.
    assert fast_report.dse_scheduled < fast_report.dse_evaluations


@pytest.mark.parametrize("kernel", sorted(KERNEL_PARAMS))
def test_parallel_dse_is_deterministic_and_identical(kernel):
    serial_text, serial_report = _compile(kernel, HLSOptions(jobs=1))
    thread_text, thread_report = _compile(kernel, HLSOptions(jobs=4))
    assert thread_text == serial_text
    # The same loops end up with the same chosen IIs.
    assert ([loop.initiation_interval for loop in thread_report.loops]
            == [loop.initiation_interval for loop in serial_report.loops])


def test_parallel_process_pool_identical_on_gemm():
    serial_text, _ = _compile("gemm", HLSOptions(jobs=1))
    process_text, _ = _compile("gemm", HLSOptions(jobs=2,
                                                  executor="process"))
    assert process_text == serial_text


class TestPruning:
    def test_pruning_skips_points_but_keeps_the_choice(self):
        artifacts = build_kernel("transpose", **KERNEL_PARAMS["transpose"])
        program = artifacts.hls_program
        loop, _ = collect_innermost_loops(
            program.function(artifacts.hls_function).body)[0]
        clear_schedule_memo()
        full = explore_loop(loop, options=HLSOptions.seed_equivalent())
        clear_schedule_memo()
        pruned = explore_loop(loop, options=HLSOptions(jobs=1))
        assert pruned.pruned > 0
        assert pruned.evaluations == full.evaluations  # points examined
        assert len(pruned.candidates) < len(full.candidates)
        chosen_full, chosen_fast = full.chosen, pruned.chosen
        assert (chosen_full.initiation_interval, chosen_full.unroll_factor,
                chosen_full.cost) == (chosen_fast.initiation_interval,
                                      chosen_fast.unroll_factor,
                                      chosen_fast.cost)

    def test_directive_loops_prune_safely(self):
        artifacts = build_kernel("histogram", **KERNEL_PARAMS["histogram"])
        program = artifacts.hls_program
        for loop, _ in collect_innermost_loops(
                program.function(artifacts.hls_function).body):
            clear_schedule_memo()
            full = explore_loop(loop, options=HLSOptions.seed_equivalent())
            clear_schedule_memo()
            fast = explore_loop(loop, options=HLSOptions(jobs=1))
            assert (full.chosen.initiation_interval
                    == fast.chosen.initiation_interval)
            assert full.chosen.cost == fast.chosen.cost


class TestMemoization:
    def test_identical_loops_hit_the_memo(self):
        artifacts = build_kernel("gemm", **KERNEL_PARAMS["gemm"])
        program = artifacts.hls_program
        loops = collect_innermost_loops(
            program.function(artifacts.hls_function).body)
        clear_schedule_memo()
        first = explore_loop(loops[0][0], options=HLSOptions(jobs=1))
        # Without port pragmas the three port scalings are identical design
        # points, so even the first sweep hits its own memo entries.
        assert first.scheduled > 0 and schedule_memo_size() > 0
        # Re-exploring the same loop answers everything from the cache.
        again = explore_loop(loops[0][0], options=HLSOptions(jobs=1))
        assert again.scheduled == 0
        assert again.memo_hits == len(again.candidates)
        assert (again.chosen.initiation_interval
                == first.chosen.initiation_interval)

    def test_memo_capacity_is_bounded(self, monkeypatch):
        monkeypatch.setenv("REPRO_DSE_MEMO_SIZE", "2")
        clear_schedule_memo()
        artifacts = build_kernel("gemm", **KERNEL_PARAMS["gemm"])
        program = artifacts.hls_program
        for loop, _ in collect_innermost_loops(
                program.function(artifacts.hls_function).body):
            explore_loop(loop, options=HLSOptions(jobs=1))
        assert schedule_memo_size() <= 2
        clear_schedule_memo()

    def test_memo_can_be_disabled(self):
        clear_schedule_memo()
        artifacts = build_kernel("transpose", **KERNEL_PARAMS["transpose"])
        program = artifacts.hls_program
        loop, _ = collect_innermost_loops(
            program.function(artifacts.hls_function).body)[0]
        explore_loop(loop, options=HLSOptions(jobs=1, memoize=False))
        assert schedule_memo_size() == 0


class TestGraphSignature:
    def test_equal_bodies_share_a_signature(self):
        artifacts = build_kernel("transpose", **KERNEL_PARAMS["transpose"])
        loop, _ = collect_innermost_loops(
            artifacts.hls_program.function(artifacts.hls_function).body)[0]
        a = DFGBuilder().build(loop.body)
        b = DFGBuilder().build(loop.body)
        assert a is not b
        assert graph_signature(a) == graph_signature(b)

    def test_different_bodies_differ(self):
        t = build_kernel("transpose", **KERNEL_PARAMS["transpose"])
        s = build_kernel("stencil_1d", **KERNEL_PARAMS["stencil_1d"])
        t_loop, _ = collect_innermost_loops(
            t.hls_program.function(t.hls_function).body)[0]
        s_loop, _ = collect_innermost_loops(
            s.hls_program.function(s.hls_function).body)[0]
        assert (graph_signature(DFGBuilder().build(t_loop.body))
                != graph_signature(DFGBuilder().build(s_loop.body)))


class TestOptions:
    def test_env_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_DSE_JOBS", "3")
        monkeypatch.setenv("REPRO_DSE_EXECUTOR", "process")
        options = HLSOptions()
        assert options.jobs == 3 and options.executor == "process"

    def test_invalid_options_rejected(self):
        with pytest.raises(ValueError):
            HLSOptions(jobs=0)
        with pytest.raises(ValueError):
            HLSOptions(executor="rayon")
