"""Parallel DSE under failure: supervised workers, typed errors, cleanup.

A worker that crashes, stalls or raises mid-sweep must never change the
chosen schedules (the candidate is re-evaluated in-process), must surface
as a typed :class:`repro.resilience.WorkerError` when truly unrecoverable,
and must never leave executors or futures behind on interrupt.
"""

import os
import subprocess
import sys

import pytest

import repro.hls.dse as dse
from repro.hls import HLSOptions, clear_schedule_memo, compile_program
from repro.kernels import build_kernel
from repro.resilience import (
    FaultPlan,
    WorkerError,
    install_plan,
    resilience_counters,
    set_plan,
)
from repro.verilog.emitter import emit_design


@pytest.fixture(autouse=True)
def no_ambient_plan():
    previous = set_plan(None)
    try:
        yield
    finally:
        set_plan(previous)
        dse.shutdown_executors()


def _compile(options):
    clear_schedule_memo()
    artifacts = build_kernel("transpose", size=8)
    result = compile_program(artifacts.hls_program, artifacts.hls_function,
                             options=options)
    return emit_design(result.design), result


class TestWorkerRecovery:
    def test_failed_candidate_is_retried_in_process(self):
        baseline, _ = _compile(HLSOptions(jobs=1))
        before = resilience_counters().get("dse.worker_failures", 0)
        with install_plan(FaultPlan.parse("dse.candidate:error@3*2")):
            recovered, _ = _compile(HLSOptions(jobs=2))
        assert recovered == baseline
        assert resilience_counters()["dse.worker_failures"] > before

    def test_stalled_candidate_is_abandoned_and_recovered(self):
        baseline, _ = _compile(HLSOptions(jobs=1))
        with install_plan(FaultPlan.parse("dse.candidate:timeout(0.6)@2")):
            recovered, _ = _compile(HLSOptions(jobs=2,
                                               candidate_timeout=0.05,
                                               candidate_retries=2))
        assert recovered == baseline

    def test_unrecoverable_candidate_raises_typed_worker_error(self):
        from repro.ir.errors import HLSError
        with install_plan(FaultPlan.parse("dse.candidate:error*500")):
            with pytest.raises(WorkerError) as excinfo:
                _compile(HLSOptions(jobs=2, candidate_retries=1))
        assert isinstance(excinfo.value, HLSError)
        assert "in-process attempt" in str(excinfo.value)

    def test_candidate_options_validate(self):
        with pytest.raises(ValueError):
            HLSOptions(candidate_timeout=0)
        with pytest.raises(ValueError):
            HLSOptions(candidate_retries=-1)


class TestInterruptCleanup:
    def test_keyboard_interrupt_discards_the_executor(self, monkeypatch):
        def explode(*args, **kwargs):
            raise KeyboardInterrupt()
        monkeypatch.setattr(dse, "_recover_inprocess", explode)
        with install_plan(FaultPlan.parse("dse.candidate:error@2")):
            with pytest.raises(KeyboardInterrupt):
                _compile(HLSOptions(jobs=2))
        # The pool was torn down, not left running with queued work.
        assert dse._EXECUTORS == {}

    def test_rerun_after_interrupt_is_identical(self, monkeypatch):
        baseline, _ = _compile(HLSOptions(jobs=2))
        def explode(*args, **kwargs):
            raise KeyboardInterrupt()
        monkeypatch.setattr(dse, "_recover_inprocess", explode)
        with install_plan(FaultPlan.parse("dse.candidate:error@2")):
            with pytest.raises(KeyboardInterrupt):
                _compile(HLSOptions(jobs=2))
        monkeypatch.undo()
        rerun, report = _compile(HLSOptions(jobs=2))
        assert rerun == baseline        # memo survived the interrupt intact


class TestProcessPoolCrash:
    _CHILD = r"""
import hashlib
from repro.hls import HLSOptions, compile_program
from repro.kernels import build_kernel
from repro.verilog.emitter import emit_design
artifacts = build_kernel("transpose", size=8)
result = compile_program(artifacts.hls_program, artifacts.hls_function,
                         options=HLSOptions(jobs=2, executor="process",
                                            candidate_retries=2))
print(hashlib.sha256(emit_design(result.design).encode()).hexdigest())
"""

    def _run_child(self, fault_plan):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [os.path.join(os.path.dirname(__file__), "..", "..",
                                       "src"),
                          env.get("PYTHONPATH")]))
        if fault_plan:
            env["REPRO_FAULT_PLAN"] = fault_plan
        else:
            env.pop("REPRO_FAULT_PLAN", None)
        return subprocess.run([sys.executable, "-c", self._CHILD],
                              env=env, capture_output=True, text=True,
                              timeout=300)

    def test_sigkilled_worker_degrades_to_serial_identical(self):
        clean = self._run_child(None)
        assert clean.returncode == 0, clean.stderr
        # Each forked worker self-installs the env plan; the 2nd candidate
        # it evaluates SIGKILLs it, breaking the pool mid-sweep.
        crashed = self._run_child("dse.candidate:crash@2")
        assert crashed.returncode == 0, crashed.stderr
        assert crashed.stdout.strip() == clean.stdout.strip()
