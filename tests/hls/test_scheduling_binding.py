"""Tests for the baseline HLS compiler's scheduling and binding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir.errors import HLSError
from repro.hls import (
    DFGBuilder,
    SwBuilder,
    Var,
    asap_schedule,
    bind_loop,
    list_schedule,
    recurrence_min_ii,
    resource_min_ii,
    schedule_loop,
)
from repro.hls.scheduling import LATENCY


def transpose_body():
    sw = SwBuilder("p")
    return [
        sw.load("v", "A", Var("i"), Var("j")),
        sw.store("C", Var("v"), Var("j"), Var("i")),
    ]


def histogram_body():
    sw = SwBuilder("p")
    return [
        sw.load("pix", "img", Var("p")),
        sw.load("cnt", "bins", Var("pix")),
        sw.assign("cnt1", sw.add("cnt", 1)),
        sw.store("bins", Var("cnt1"), Var("pix")),
    ]


class TestDFG:
    def test_nodes_and_data_edges(self):
        graph = DFGBuilder().build(transpose_body())
        kinds = [node.kind for node in graph.nodes]
        assert kinds == ["load", "store"]
        assert (0, 1, 0) in graph.edges  # store depends on the load

    def test_expression_flattening(self):
        sw = SwBuilder("p")
        graph = DFGBuilder().build([
            sw.assign("y", sw.add(sw.mul("a", "b"), sw.mul("c", "d"))),
        ])
        kinds = sorted(node.kind for node in graph.nodes)
        assert kinds == ["add", "mul", "mul"]

    def test_memory_dependences_same_array(self):
        graph = DFGBuilder().build(histogram_body())
        carried = [edge for edge in graph.edges if edge[2] > 0]
        assert carried  # load(bins)/store(bins) with different subscripts

    def test_same_subscript_accesses_have_a_distance_zero_edge(self):
        sw = SwBuilder("p")
        graph = DFGBuilder().build([
            sw.load("x", "A", Var("i")),
            sw.store("A", Var("x"), Var("i")),
        ])
        memory_edges = [edge for edge in graph.edges
                        if graph.nodes[edge[0]].array == "A"
                        and graph.nodes[edge[1]].array == "A"]
        # The same-iteration (distance 0) RAW dependence must be present; a
        # conservative loop-carried edge may accompany it for variable
        # subscripts.
        assert any(distance == 0 for *_, distance in memory_edges)


class TestScheduling:
    def test_asap_respects_load_latency(self):
        graph = DFGBuilder().build(transpose_body())
        start = asap_schedule(graph)
        assert start[0] == 0
        assert start[1] == LATENCY["load"]

    def test_list_schedule_respects_dependences(self):
        graph = DFGBuilder().build(histogram_body())
        start = list_schedule(graph)
        assert start is not None
        for src, dst, distance in graph.edges:
            if distance == 0:
                assert start[src] + graph.nodes[src].latency <= start[dst]

    def test_memory_port_limit_serialises_loads(self):
        sw = SwBuilder("p")
        body = [sw.load(f"v{i}", "A", Var("i")) for i in range(3)]
        graph = DFGBuilder().build(body)
        start = list_schedule(graph)
        cycles = sorted(start.values())
        assert len(set(cycles)) == 3  # one read port -> three different cycles

    def test_array_ports_relax_the_limit(self):
        sw = SwBuilder("p")
        body = [sw.load(f"v{i}", "A", Var("i")) for i in range(3)]
        graph = DFGBuilder().build(body)
        start = list_schedule(graph, array_ports={"A": 3})
        assert len(set(start.values())) == 1

    def test_resource_min_ii(self):
        sw = SwBuilder("p")
        body = [sw.load("a", "X", Var("i")), sw.load("b", "X", sw.add("i", 1)),
                sw.store("Y", Var("a"), Var("i"))]
        graph = DFGBuilder().build(body)
        assert resource_min_ii(graph) == 2
        assert resource_min_ii(graph, {"X": 2}) == 1

    def test_recurrence_min_ii_histogram(self):
        graph = DFGBuilder().build(histogram_body())
        assert recurrence_min_ii(graph) >= 2

    def test_schedule_loop_pipelined_ii(self):
        schedule = schedule_loop(transpose_body(), pipeline=True)
        assert schedule.pipelined
        assert schedule.initiation_interval == 1

    def test_schedule_loop_histogram_ii_reflects_recurrence(self):
        schedule = schedule_loop(histogram_body(), pipeline=True)
        assert schedule.initiation_interval >= 2

    def test_requested_ii_is_a_floor(self):
        schedule = schedule_loop(transpose_body(), pipeline=True, requested_ii=3)
        assert schedule.initiation_interval >= 3

    def test_sequential_schedule(self):
        schedule = schedule_loop(transpose_body(), pipeline=False)
        assert not schedule.pipelined
        assert schedule.initiation_interval == schedule.latency

    def test_infeasible_ii_raises(self):
        with pytest.raises(HLSError):
            schedule_loop(histogram_body(), pipeline=True, max_ii=1)

    @settings(max_examples=20, deadline=None)
    @given(n_loads=st.integers(min_value=1, max_value=6),
           n_ops=st.integers(min_value=0, max_value=6))
    def test_schedules_always_respect_dependences(self, n_loads, n_ops):
        """Property: list scheduling never violates a data dependence."""
        sw = SwBuilder("p")
        body = [sw.load(f"v{i}", "A", sw.add("i", i)) for i in range(n_loads)]
        previous = "v0"
        for i in range(n_ops):
            body.append(sw.assign(f"t{i}", sw.add(previous, f"v{i % n_loads}")))
            previous = f"t{i}"
        body.append(sw.store("B", previous, Var("i")))
        graph = DFGBuilder().build(body)
        start = list_schedule(graph)
        assert start is not None
        for src, dst, distance in graph.edges:
            if distance == 0:
                assert start[src] + graph.nodes[src].latency <= start[dst]


class TestBinding:
    def test_functional_units_shared_across_cycles(self):
        sw = SwBuilder("p")
        body = [sw.assign("x", sw.mul("a", "b")), sw.assign("y", sw.mul("x", "c"))]
        schedule = schedule_loop(body, pipeline=False)
        binding = bind_loop(schedule)
        # The two dependent multiplies run in different cycles and share one unit.
        assert len(binding.units_of_kind("mul")) == 1

    def test_parallel_multiplies_need_two_units(self):
        sw = SwBuilder("p")
        body = [sw.assign("x", sw.mul("a", "b")), sw.assign("y", sw.mul("c", "d")),
                sw.assign("z", sw.add("x", "y"))]
        schedule = schedule_loop(body, pipeline=True)
        binding = bind_loop(schedule)
        assert len(binding.units_of_kind("mul")) >= 2

    def test_loop_carried_value_gets_a_register(self):
        sw = SwBuilder("p")
        body = [sw.assign("acc", sw.add("acc", "x"))]
        schedule = schedule_loop(body, pipeline=True)
        binding = bind_loop(schedule)
        assert any(r.value == "acc" for r in binding.registers)

    def test_register_bits_positive_for_pipelined_loads(self):
        schedule = schedule_loop(transpose_body(), pipeline=True)
        binding = bind_loop(schedule)
        assert binding.total_register_bits > 0
