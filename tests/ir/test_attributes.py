"""Unit tests for attributes."""

import pytest

from repro.ir.attributes import (
    ArrayAttr,
    BoolAttr,
    FloatAttr,
    IntegerAttr,
    StringAttr,
    SymbolRefAttr,
    TypeAttr,
    attr,
    int_of,
    ints_of,
)
from repro.ir.types import I32


class TestAttrConversion:
    def test_int(self):
        assert attr(5) == IntegerAttr(5)

    def test_bool_is_not_int(self):
        assert isinstance(attr(True), BoolAttr)

    def test_float(self):
        assert attr(2.5) == FloatAttr(2.5)

    def test_string(self):
        assert attr("x") == StringAttr("x")

    def test_type(self):
        assert attr(I32) == TypeAttr(I32)

    def test_list_becomes_array(self):
        array = attr([1, 2, 3])
        assert isinstance(array, ArrayAttr)
        assert ints_of(array) == (1, 2, 3)

    def test_nested_list(self):
        array = attr([[1], [2, 3]])
        assert isinstance(array[0], ArrayAttr)

    def test_passthrough(self):
        original = StringAttr("y")
        assert attr(original) is original

    def test_unconvertible(self):
        with pytest.raises(TypeError):
            attr(object())


class TestAccessors:
    def test_int_of(self):
        assert int_of(IntegerAttr(7)) == 7
        assert int_of(BoolAttr(True)) == 1

    def test_int_of_wrong_kind(self):
        with pytest.raises(TypeError):
            int_of(StringAttr("no"))

    def test_ints_of_wrong_kind(self):
        with pytest.raises(TypeError):
            ints_of(IntegerAttr(3))

    def test_array_iteration_and_len(self):
        array = attr([4, 5])
        assert len(array) == 2
        assert [int_of(a) for a in array] == [4, 5]
        assert int_of(array[1]) == 5


class TestPrintingForms:
    def test_symbol_ref(self):
        assert str(SymbolRefAttr("callee")) == "@callee"

    def test_bool_text(self):
        assert str(BoolAttr(True)) == "true"
        assert str(BoolAttr(False)) == "false"

    def test_typed_integer(self):
        assert str(IntegerAttr(3, I32)) == "3 : i32"

    def test_array_text(self):
        assert str(attr([1, 2])) == "[1, 2]"
