"""Property tests for hash-consed (interned) types and attributes."""

import copy

import pytest
from hypothesis import given, strategies as st

from repro.ir.attributes import (
    ArrayAttr,
    BoolAttr,
    IntegerAttr,
    StringAttr,
    attr,
)
from repro.ir.types import (
    I32,
    FloatType,
    FunctionType,
    IntegerType,
)
from repro.hir.types import CONST, ConstType, MemrefType


class TestTypeInterning:
    @given(st.integers(min_value=1, max_value=512), st.booleans())
    def test_equal_integer_types_are_identical(self, width, signed):
        assert IntegerType(width, signed) is IntegerType(width, signed)

    @given(st.integers(min_value=1, max_value=512))
    def test_keyword_and_positional_spellings_unify(self, width):
        assert IntegerType(width) is IntegerType(width=width)
        assert IntegerType(width) is IntegerType(width, True)

    def test_distinct_types_stay_distinct(self):
        assert IntegerType(8) is not IntegerType(9)
        assert IntegerType(8) is not IntegerType(8, signed=False)
        assert FloatType(32) is not FloatType(64)

    def test_module_singletons_are_canonical(self):
        assert IntegerType(32) is I32
        assert ConstType() is CONST

    def test_function_types_intern(self):
        a = FunctionType((I32,), (IntegerType(8),))
        b = FunctionType((IntegerType(32),), (IntegerType(8),))
        assert a is b

    def test_memref_types_intern(self):
        a = MemrefType((4, 4), IntegerType(16), "rw", (0,))
        b = MemrefType((4, 4), IntegerType(16), "rw", (0,))
        assert a is b

    def test_invalid_constructions_still_raise(self):
        with pytest.raises(ValueError):
            IntegerType(0)
        with pytest.raises(ValueError):
            MemrefType(())

    def test_copy_and_deepcopy_preserve_identity(self):
        t = MemrefType((2, 3), I32, "r", (1,))
        assert copy.copy(t) is t
        assert copy.deepcopy(t) is t

    def test_unhashable_arguments_fall_back_to_plain_construction(self):
        # Lists are unhashable, so this spelling cannot be interned — it must
        # still construct and compare structurally.
        a = FunctionType([I32], [I32])  # type: ignore[arg-type]
        assert a.inputs[0] is I32

    @given(st.integers(min_value=1, max_value=64))
    def test_equality_and_hash_agree_with_identity(self, width):
        a, b = IntegerType(width), IntegerType(width)
        assert a == b and hash(a) == hash(b) and a is b


class TestAttributeInterning:
    @given(st.integers(min_value=-(2 ** 31), max_value=2 ** 31))
    def test_integer_attrs_intern(self, value):
        assert IntegerAttr(value) is IntegerAttr(value)
        assert attr(value) is IntegerAttr(value)

    def test_typed_and_untyped_attrs_differ(self):
        assert IntegerAttr(3) is not IntegerAttr(3, I32)

    @given(st.text(max_size=16))
    def test_string_attrs_intern(self, text):
        assert StringAttr(text) is StringAttr(text)

    def test_bool_is_not_integer(self):
        assert attr(True) is BoolAttr(True)
        assert attr(True) is not IntegerAttr(1)

    def test_array_attrs_intern_recursively(self):
        a = attr([1, 2, 3])
        b = attr((1, 2, 3))
        assert isinstance(a, ArrayAttr) and a is b

    def test_deepcopy_preserves_identity(self):
        a = attr([1, "x", True])
        assert copy.deepcopy(a) is a
