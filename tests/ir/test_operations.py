"""Unit tests for operations, values, blocks, regions and use lists."""

import pytest

from repro.ir import (
    Block,
    Builder,
    ModuleOp,
    Operation,
    Region,
    VerificationError,
    create_operation,
    registered_operation,
    verify,
)
from repro.ir.types import I32
from repro.hir.ops import AddOp, ConstantOp, FuncOp, ReturnOp


def make_constants():
    a = ConstantOp(1, I32)
    b = ConstantOp(2, I32)
    return a, b


class TestUseLists:
    def test_results_track_uses(self):
        a, b = make_constants()
        add = AddOp(a.results[0], b.results[0])
        assert a.results[0].num_uses == 1
        assert list(a.results[0].users()) == [add]

    def test_replace_all_uses(self):
        a, b = make_constants()
        add = AddOp(a.results[0], a.results[0])
        a.results[0].replace_all_uses_with(b.results[0])
        assert a.results[0].num_uses == 0
        assert b.results[0].num_uses == 2
        assert add.operand(0) is b.results[0]

    def test_replace_with_self_is_noop(self):
        a, _ = make_constants()
        AddOp(a.results[0], a.results[0])
        a.results[0].replace_all_uses_with(a.results[0])
        assert a.results[0].num_uses == 2

    def test_set_operand_updates_uses(self):
        a, b = make_constants()
        add = AddOp(a.results[0], a.results[0])
        add.set_operand(1, b.results[0])
        assert a.results[0].num_uses == 1
        assert b.results[0].num_uses == 1

    def test_operand_must_be_value(self):
        a, _ = make_constants()
        with pytest.raises(TypeError):
            Operation(name="test.op", operands=[42])  # type: ignore[list-item]


class TestEraseAndClone:
    def test_erase_with_uses_raises(self):
        a, b = make_constants()
        block = Block()
        block.append(a)
        block.append(b)
        block.append(AddOp(a.results[0], b.results[0]))
        with pytest.raises(VerificationError):
            a.erase()

    def test_erase_removes_from_block(self):
        a, _ = make_constants()
        block = Block()
        block.append(a)
        a.erase()
        assert len(block) == 0
        assert a.parent_block is None

    def test_clone_is_deep(self):
        func = FuncOp("f", [I32], [])
        builder = Builder()
        builder.set_insertion_point_to_end(func.body)
        c = builder.insert(ConstantOp(3, I32))
        builder.insert(AddOp(c.results[0], func.arguments[0]))
        builder.insert(ReturnOp())
        clone = func.clone()
        assert clone is not func
        assert len(clone.body.operations) == len(func.body.operations)
        # Cloned ops reference cloned values, not the originals.
        cloned_add = clone.body.operations[1]
        assert cloned_add.operand(0) is not c.results[0]

    def test_clone_preserves_attributes(self):
        a = ConstantOp(9, I32)
        assert a.clone().get_attr("value").value == 9

    def test_result_property_single(self):
        a, _ = make_constants()
        assert a.result is a.results[0]

    def test_result_property_multiple_raises(self):
        op = Operation(name="test.multi", result_types=[I32, I32])
        with pytest.raises(ValueError):
            _ = op.result


class TestStructure:
    def test_walk_order_is_preorder(self):
        module = ModuleOp("m")
        func = FuncOp("f", [], [])
        module.add(func)
        func.body.append(ReturnOp())
        names = [op.name for op in module.walk()]
        assert names == ["builtin.module", "hir.func", "hir.return"]

    def test_parent_links(self):
        func = FuncOp("f", [], [])
        ret = ReturnOp()
        func.body.append(ret)
        assert ret.parent_op is func
        assert list(ret.ancestors()) == [func]

    def test_region_block_accessors(self):
        region = Region()
        with pytest.raises(ValueError):
            _ = region.block
        block = region.add_block()
        assert region.block is block
        assert len(region) == 1

    def test_block_insert_before_after(self):
        block = Block()
        a, b = make_constants()
        block.append(a)
        block.insert_before(a, b)
        assert block.operations == [b, a]
        c = ConstantOp(3, I32)
        block.insert_after(b, c)
        assert block.operations == [b, c, a]

    def test_block_index_of_missing(self):
        block = Block()
        a, _ = make_constants()
        with pytest.raises(ValueError):
            block.index_of(a)


class TestRegistry:
    def test_registered_operation_lookup(self):
        assert registered_operation("hir.add") is AddOp
        assert registered_operation("no.such.op") is None

    def test_create_operation_uses_registered_class(self):
        a, b = make_constants()
        op = create_operation("hir.add", operands=[a.results[0], b.results[0]],
                              result_types=[I32])
        assert isinstance(op, AddOp)

    def test_create_operation_generic_fallback(self):
        op = create_operation("custom.op", result_types=[I32])
        assert type(op) is Operation
        assert op.name == "custom.op"


class TestModuleSymbols:
    def test_lookup(self):
        module = ModuleOp("m")
        func = FuncOp("f", [], [])
        func.body.append(ReturnOp())
        module.add(func)
        assert module.lookup("f") is func
        assert module.lookup("missing") is None

    def test_require_raises(self):
        module = ModuleOp("m")
        with pytest.raises(VerificationError):
            module.require("missing")

    def test_duplicate_symbols_rejected(self):
        module = ModuleOp("m")
        for _ in range(2):
            func = FuncOp("dup", [], [])
            func.body.append(ReturnOp())
            module.add(func)
        with pytest.raises(VerificationError):
            verify(module)
