"""Round-trip tests for the textual IR format (printer + parser)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import parse_module, print_module, verify, ParseError
from repro.ir.types import I32
from repro.hir import DesignBuilder, MemrefType


def build_transpose_module(size=4):
    design = DesignBuilder("roundtrip")
    a = MemrefType((size, size), I32, port="r")
    c = MemrefType((size, size), I32, port="w")
    with design.func("transpose", [("Ai", a), ("Co", c)]) as f:
        with f.for_loop(0, size, 1, time=f.time, iter_offset=1, iv_name="i") as i_loop:
            with f.for_loop(0, size, 1, time=i_loop.time, iter_offset=1,
                            iv_name="j") as j_loop:
                v = f.mem_read(f.arg("Ai"), [i_loop.iv, j_loop.iv], time=j_loop.time)
                jd = f.delay(j_loop.iv, 1, time=j_loop.time)
                f.mem_write(v, f.arg("Co"), [jd, i_loop.iv], time=j_loop.time, offset=1)
                f.yield_(j_loop.time, offset=1)
            f.yield_(j_loop.done, offset=1)
        f.return_()
    return design.module


class TestRoundTrip:
    def test_transpose_round_trips(self):
        module = build_transpose_module()
        text = print_module(module)
        reparsed = parse_module(text)
        verify(reparsed)
        assert print_module(reparsed) == text

    def test_round_trip_is_stable_fixed_point(self):
        module = build_transpose_module()
        once = print_module(parse_module(print_module(module)))
        twice = print_module(parse_module(once))
        assert once == twice

    def test_parsed_ops_are_typed(self):
        module = parse_module(print_module(build_transpose_module()))
        from repro.hir.ops import ForOp, MemReadOp
        kinds = {type(op) for op in module.walk()}
        assert ForOp in kinds and MemReadOp in kinds

    def test_memref_type_round_trips(self):
        module = parse_module(print_module(build_transpose_module()))
        func = module.lookup("transpose")
        arg_type = func.arguments[0].type
        assert isinstance(arg_type, MemrefType)
        assert arg_type.shape == (4, 4)
        assert arg_type.port == "r"

    @pytest.mark.parametrize("kernel,params", [
        ("stencil_1d", {"size": 16}),
        ("histogram", {"pixels": 16, "bins": 16}),
        ("convolution", {"size": 6}),
        ("fifo", {"depth": 16}),
        ("gemm", {"size": 2}),
    ])
    def test_every_kernel_round_trips(self, kernel, params):
        from repro.kernels import build_kernel
        module = build_kernel(kernel, **params).module
        text = print_module(module)
        reparsed = parse_module(text)
        verify(reparsed)
        assert print_module(reparsed) == text


class TestParseErrors:
    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse_module("")

    def test_undefined_value(self):
        text = '"hir.add"(%missing, %missing) : (i32, i32) -> (i32)'
        with pytest.raises(ParseError, match="undefined value"):
            parse_module(text)

    def test_operand_type_mismatch(self):
        text = ('"builtin.module"() ({\n^bb0:\n'
                '  %c = "hir.constant"() {value = 1} : () -> (i32)\n'
                '  %x = "hir.add"(%c, %c) : (i8, i8) -> (i8)\n'
                '}) : () -> ()')
        with pytest.raises(ParseError, match="has type"):
            parse_module(text)

    def test_unknown_dialect_type(self):
        with pytest.raises(ParseError):
            parse_module('"test.op"() : () -> (!nodialect.foo)')

    def test_unknown_hir_type(self):
        with pytest.raises(ParseError):
            parse_module('"test.op"() : () -> (!hir.bogus)')

    def test_trailing_garbage(self):
        text = '"hir.constant"() {value = 1} : () -> (!hir.const) extra'
        with pytest.raises(ParseError, match="trailing"):
            parse_module(text)

    def test_bad_character(self):
        with pytest.raises(ParseError):
            parse_module("`")


class TestAttributeRoundTrip:
    @pytest.mark.parametrize("attrs_text", [
        '{value = 42}',
        '{value = -7}',
        '{name = "hello world"}',
        '{flag = true, other = false}',
        '{callee = @foo}',
        '{items = [1, 2, 3]}',
        '{nested = [[1], [2, 3]]}',
        '{ty = i32}',
    ])
    def test_attr_forms(self, attrs_text):
        text = f'"test.op"() {attrs_text} : () -> ()'
        module = parse_module(text)
        assert print_module(module).strip().startswith('"test.op"')


@settings(max_examples=25, deadline=None)
@given(values=st.lists(st.integers(min_value=-1000, max_value=1000),
                       min_size=1, max_size=6))
def test_constant_chain_round_trips(values):
    """Property: modules of chained constant/add ops always round-trip."""
    design = DesignBuilder("prop")
    with design.func("chain", [("x", I32)], result_types=[I32]) as f:
        acc = f.arg("x")
        for value in values:
            acc = f.add(acc, f.constant(value, I32))
        f.return_([acc])
    text = print_module(design.module)
    assert print_module(parse_module(text)) == text
