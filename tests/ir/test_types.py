"""Unit tests for the core type system."""

import pytest
from hypothesis import given, strategies as st

from repro.ir.types import (
    F32,
    I1,
    I8,
    I32,
    FloatType,
    FunctionType,
    IndexType,
    IntegerType,
    NoneType,
    i,
)


class TestIntegerType:
    def test_str_signed(self):
        assert str(IntegerType(32)) == "i32"

    def test_str_unsigned(self):
        assert str(IntegerType(8, signed=False)) == "ui8"

    def test_bitwidth(self):
        assert IntegerType(17).bitwidth == 17

    def test_equality(self):
        assert IntegerType(32) == I32
        assert IntegerType(32) != IntegerType(31)

    def test_hashable(self):
        assert len({IntegerType(8), IntegerType(8), IntegerType(9)}) == 2

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            IntegerType(0)
        with pytest.raises(ValueError):
            IntegerType(-3)

    def test_signed_range(self):
        assert I8.min_value() == -128
        assert I8.max_value() == 127

    def test_unsigned_range(self):
        u4 = IntegerType(4, signed=False)
        assert u4.min_value() == 0
        assert u4.max_value() == 15

    def test_wrap_positive_overflow(self):
        assert I8.wrap(128) == -128

    def test_wrap_negative(self):
        assert I8.wrap(-1) == -1

    def test_wrap_unsigned(self):
        u8 = IntegerType(8, signed=False)
        assert u8.wrap(256) == 0
        assert u8.wrap(-1) == 255

    def test_i_helper(self):
        assert i(5) == IntegerType(5)

    @given(st.integers(min_value=-(2 ** 40), max_value=2 ** 40))
    def test_wrap_is_idempotent(self, value):
        wrapped = I8.wrap(value)
        assert I8.wrap(wrapped) == wrapped
        assert I8.min_value() <= wrapped <= I8.max_value()

    @given(st.integers(min_value=1, max_value=64),
           st.integers(min_value=-(2 ** 70), max_value=2 ** 70))
    def test_wrap_congruent_modulo_width(self, width, value):
        ty = IntegerType(width)
        assert (ty.wrap(value) - value) % (1 << width) == 0


class TestFloatAndOtherTypes:
    def test_float_str(self):
        assert str(F32) == "f32"

    def test_float_invalid_width(self):
        with pytest.raises(ValueError):
            FloatType(24)

    def test_float_bitwidth(self):
        assert FloatType(64).bitwidth == 64

    def test_index_and_none(self):
        assert str(IndexType()) == "index"
        assert str(NoneType()) == "none"
        assert NoneType().bitwidth == 0

    def test_i1_is_one_bit(self):
        assert I1.bitwidth == 1


class TestFunctionType:
    def test_str(self):
        ft = FunctionType((I32, I8), (I32,))
        assert str(ft) == "(i32, i8) -> (i32)"

    def test_empty(self):
        assert str(FunctionType()) == "() -> ()"

    def test_equality(self):
        assert FunctionType((I32,), ()) == FunctionType((I32,), ())
        assert FunctionType((I32,), ()) != FunctionType((I8,), ())
