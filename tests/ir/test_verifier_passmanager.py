"""Tests for the structural verifier, builder and pass manager."""

import pytest

from repro.ir import (
    Block,
    Builder,
    InsertionPoint,
    ModuleOp,
    Pass,
    PassManager,
    VerificationError,
    collect_errors,
    verify,
)
from repro.ir.types import I32
from repro.hir.ops import AddOp, ConstantOp, FuncOp, ReturnOp


def valid_module():
    module = ModuleOp("m")
    func = FuncOp("f", [I32], [])
    builder = Builder()
    builder.set_insertion_point_to_end(func.body)
    c = builder.insert(ConstantOp(1, I32))
    builder.insert(AddOp(c.results[0], func.arguments[0]))
    builder.insert(ReturnOp())
    module.add(func)
    return module


class TestVerifier:
    def test_valid_module_passes(self):
        verify(valid_module())

    def test_use_before_def_detected(self):
        module = ModuleOp("m")
        func = FuncOp("f", [], [])
        c = ConstantOp(1, I32)
        add = AddOp(c.results[0], c.results[0])
        func.body.append(add)      # add appears before the constant
        func.body.append(c)
        func.body.append(ReturnOp())
        module.add(func)
        with pytest.raises(VerificationError, match="dominate"):
            verify(module)

    def test_value_from_sibling_region_rejected(self):
        module = ModuleOp("m")
        f1 = FuncOp("f1", [], [])
        c = ConstantOp(1, I32)
        f1.body.append(c)
        f1.body.append(ReturnOp())
        f2 = FuncOp("f2", [], [])
        f2.body.append(AddOp(c.results[0], c.results[0]))
        f2.body.append(ReturnOp())
        module.add(f1)
        module.add(f2)
        errors = collect_errors(module)
        assert any("dominate" in e.message for e in errors)

    def test_collect_errors_returns_all(self):
        module = ModuleOp("m")
        func = FuncOp("f", [], [])   # missing hir.return
        module.add(func)
        errors = collect_errors(module)
        assert errors

    def test_missing_return_detected(self):
        func = FuncOp("f", [], [])
        with pytest.raises(VerificationError, match="hir.return"):
            verify(func)


class TestBuilder:
    def test_requires_insertion_point(self):
        with pytest.raises(RuntimeError):
            Builder().insert(ConstantOp(1, I32))

    def test_insert_before_and_after(self):
        block = Block()
        a = ConstantOp(1, I32)
        block.append(a)
        builder = Builder()
        builder.set_insertion_point_before(a)
        b = builder.insert(ConstantOp(2, I32))
        assert block.operations[0] is b
        builder.set_insertion_point_after(a)
        c = builder.insert(ConstantOp(3, I32))
        assert block.operations[-1] is c

    def test_at_end_of_restores_point(self):
        block_a, block_b = Block(), Block()
        builder = Builder(InsertionPoint(block_a))
        with builder.at_end_of(block_b):
            builder.insert(ConstantOp(1, I32))
        builder.insert(ConstantOp(2, I32))
        assert len(block_b) == 1 and len(block_a) == 1


class CountOpsPass(Pass):
    name = "count-ops"

    def run(self, module):
        for _ in module.walk():
            self.record("ops")


class TestPassManager:
    def test_runs_passes_and_records_stats(self):
        manager = PassManager()
        manager.add(CountOpsPass())
        manager.run(valid_module())
        assert manager.statistic("count-ops", "ops") == 5

    def test_timing_report_mentions_pass(self):
        manager = PassManager().add(CountOpsPass())
        manager.run(valid_module())
        assert "count-ops" in manager.timing_report()

    def test_verify_each_catches_broken_pass(self):
        class BreakIRPass(Pass):
            name = "break-ir"

            def run(self, module):
                func = module.lookup("f")
                func.body.operations.pop()  # drop the terminator

        manager = PassManager(verify_each=True).add(BreakIRPass())
        with pytest.raises(VerificationError):
            manager.run(valid_module())

    def test_statistic_missing_returns_none(self):
        manager = PassManager().add(CountOpsPass())
        manager.run(valid_module())
        assert manager.statistic("count-ops", "missing") is None
        assert manager.statistic("other", "ops") is None
