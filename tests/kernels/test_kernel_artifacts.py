"""Tests for the benchmark kernel builders themselves."""

import numpy as np
import pytest

from repro.ir import verify
from repro.hir.ops import MultOp, UnrollForOp
from repro.kernels import build_kernel, kernel_names
from repro.passes import verify_schedule

SMALL = {
    "transpose": {"size": 8},
    "stencil_1d": {"size": 16},
    "histogram": {"pixels": 16, "bins": 16},
    "gemm": {"size": 2},
    "convolution": {"size": 6},
    "fifo": {"depth": 16},
    "matvec": {"size": 4},
    "prefix_sum": {"size": 8},
    "spmv": {"rows": 4, "nnz": 2},
    "sorting_network": {"size": 4},
}


class TestRegistry:
    def test_all_six_paper_kernels_present(self):
        assert {"transpose", "stencil_1d", "histogram",
                "gemm", "convolution", "fifo"} <= set(kernel_names())

    def test_new_workloads_registered(self):
        assert {"matvec", "prefix_sum", "spmv",
                "sorting_network"} <= set(kernel_names())

    def test_registry_matches_this_suite(self):
        assert set(kernel_names()) == set(SMALL)

    def test_build_kernel_dispatch(self):
        artifacts = build_kernel("transpose", size=4)
        assert artifacts.name == "transpose"
        assert artifacts.top == "transpose"


@pytest.mark.parametrize("name", sorted(SMALL))
class TestEveryKernel:
    def test_module_verifies(self, name):
        verify(build_kernel(name, **SMALL[name]).module)

    def test_schedule_verifies(self, name):
        assert verify_schedule(build_kernel(name, **SMALL[name]).module).ok

    def test_interfaces_cover_reference_outputs(self, name):
        artifacts = build_kernel(name, **SMALL[name])
        inputs = artifacts.make_inputs(0)
        expected = artifacts.reference(inputs)
        assert set(expected) <= set(artifacts.interfaces)

    def test_inputs_are_reproducible_by_seed(self, name):
        artifacts = build_kernel(name, **SMALL[name])
        a = artifacts.make_inputs(42)
        b = artifacts.make_inputs(42)
        for key in a:
            assert np.array_equal(a[key], b[key])

    def test_notes_describe_the_design(self, name):
        assert len(build_kernel(name, **SMALL[name]).notes) > 10


class TestKernelSpecifics:
    def test_transpose_reference(self):
        artifacts = build_kernel("transpose", size=4)
        inputs = {"Ai": np.arange(16).reshape(4, 4), "Co": np.zeros((4, 4))}
        assert np.array_equal(artifacts.reference(inputs)["Co"],
                              np.arange(16).reshape(4, 4).T)

    def test_histogram_reference_counts(self):
        artifacts = build_kernel("histogram", pixels=16, bins=8)
        inputs = {"img": np.zeros(16, dtype=int), "hist": np.zeros(8)}
        assert artifacts.reference(inputs)["hist"][0] == 16

    def test_gemm_uses_unroll_for_pe_array(self):
        module = build_kernel("gemm", size=4).module
        unrolls = [op for op in module.walk() if isinstance(op, UnrollForOp)]
        assert len(unrolls) >= 4   # load x2, compute x2, writeback x2 (nested)

    def test_gemm_has_one_multiplier_per_pe(self):
        from repro.passes.unroll import unroll_all
        module = build_kernel("gemm", size=3).module
        unroll_all(module)
        multiplies = [op for op in module.walk() if isinstance(op, MultOp)]
        assert len(multiplies) == 9

    def test_convolution_weights_are_constants(self):
        from repro.kernels.convolution import WEIGHTS
        module = build_kernel("convolution", size=6).module
        multiplies = [op for op in module.walk() if isinstance(op, MultOp)]
        from repro.hir.ops import constant_value
        assert multiplies
        weights = {constant_value(op.rhs) for op in multiplies}
        assert weights <= {w for row in WEIGHTS for w in row}

    def test_stencil_hls_program_matches_function_name(self):
        artifacts = build_kernel("stencil_1d", size=16)
        assert artifacts.hls_program.function(artifacts.hls_function) is not None

    def test_fifo_has_no_hls_program(self):
        artifacts = build_kernel("fifo", depth=16)
        assert artifacts.hls_program is None

    def test_fifo_verilog_baseline_builds(self):
        from repro.kernels.fifo import build_verilog_fifo
        design = build_verilog_fifo(depth=32)
        assert design.top == "fifo"
        assert "fifo" in design.modules
