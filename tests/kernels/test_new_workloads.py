"""The new-workload suite: matvec, prefix_sum, spmv and sorting_network.

Each workload is validated against targeted numpy properties (not just the
generic registry sweep), batch-simulated, and — where it ships an HLS
baseline program — compiled through the baseline compiler's DSE so the
Table-6-style comparisons can include it.
"""

import numpy as np
import pytest

from repro.flow import Flow, FlowConfig, outputs_match
from repro.kernels import build_kernel

CONFIG = FlowConfig(pipeline="none")


class TestMatvec:
    def test_matches_numpy_matmul(self):
        flow = Flow.from_kernel("matvec", size=5, config=CONFIG)
        outcome = flow.simulate(seed=4).value
        expected = (np.asarray(outcome.inputs["A"], dtype=np.int64)
                    @ np.asarray(outcome.inputs["x"], dtype=np.int64))
        assert np.array_equal(outcome.memory_array("y"), expected)

    def test_identity_matrix_passes_vector_through(self):
        flow = Flow.from_kernel("matvec", size=4, config=CONFIG)
        vector = np.array([7, -3, 11, 0])
        outcome = flow.simulate(inputs={"A": np.eye(4, dtype=np.int64),
                                        "x": vector}).value
        assert np.array_equal(outcome.memory_array("y"), vector)


class TestPrefixSum:
    def test_cumsum_with_negatives(self):
        flow = Flow.from_kernel("prefix_sum", size=8, config=CONFIG)
        data = np.array([5, -5, 3, -3, 10, -20, 1, 1])
        outcome = flow.simulate(inputs={"xs": data}).value
        assert np.array_equal(outcome.memory_array("sums"), np.cumsum(data))

    def test_first_element_not_polluted_by_stale_state(self):
        """Back-to-back lanes must not leak the running total between runs
        (the i==0 select, not the register reset, seeds the scan)."""
        flow = Flow.from_kernel("prefix_sum", size=8, config=CONFIG)
        batch = flow.simulate_batch(range(4)).value
        for lane, inputs in enumerate(batch.inputs_per_lane):
            produced = batch.memory_array("sums", lane)
            assert produced[0] == np.asarray(inputs["xs"])[0]


class TestSpmv:
    def test_matches_ell_reference(self):
        flow = Flow.from_kernel("spmv", rows=6, nnz=3, config=CONFIG)
        outcome = flow.simulate(seed=9).value
        values = np.asarray(outcome.inputs["vals"], dtype=np.int64)
        columns = np.asarray(outcome.inputs["cols"], dtype=np.int64)
        x = np.asarray(outcome.inputs["x"], dtype=np.int64)
        expected = (values * x[columns]).sum(axis=1)
        assert np.array_equal(outcome.memory_array("y"), expected)

    def test_zero_padding_contributes_nothing(self):
        flow = Flow.from_kernel("spmv", rows=4, nnz=2, config=CONFIG)
        inputs = {
            "vals": np.array([[3, 0], [0, 0], [1, 2], [0, 5]]),
            "cols": np.array([[1, 3], [0, 0], [2, 2], [3, 0]]),
            "x": np.array([10, 20, 30, 40]),
        }
        outcome = flow.simulate(inputs=inputs).value
        assert np.array_equal(outcome.memory_array("y"),
                              np.array([60, 0, 90, 50]))


class TestSortingNetwork:
    def test_sorts_with_duplicates_and_negatives(self):
        flow = Flow.from_kernel("sorting_network", size=8, config=CONFIG)
        data = np.array([4, -4, 4, 0, -1, -1, 1000, -1000])
        outcome = flow.simulate(inputs={"xs": data}).value
        assert np.array_equal(outcome.memory_array("sorted"), np.sort(data))

    def test_latency_is_data_independent(self):
        flow = Flow.from_kernel("sorting_network", size=8, config=CONFIG)
        sorted_run = flow.simulate(inputs={"xs": np.arange(8)}).value
        reversed_run = flow.simulate(inputs={"xs": np.arange(8)[::-1]}).value
        assert sorted_run.run.cycles == reversed_run.run.cycles


@pytest.mark.parametrize("kernel,params", [
    ("matvec", {"size": 4}),
    ("prefix_sum", {"size": 8}),
    ("spmv", {"rows": 4, "nnz": 2}),
    ("sorting_network", {"size": 4}),
], ids=["matvec", "prefix_sum", "spmv", "sorting_network"])
def test_batch_sweep_all_lanes_match(kernel, params):
    flow = Flow.from_kernel(kernel, config=CONFIG, **params)
    batch = flow.simulate_batch(range(5)).value
    for lane, inputs in enumerate(batch.inputs_per_lane):
        assert bool(batch.run.done[lane])
        assert outputs_match(flow.reference(inputs),
                             lambda name: batch.memory_array(name, lane),
                             flow.output_warmup)


@pytest.mark.parametrize("kernel,params", [
    ("matvec", {"size": 4}),
    ("prefix_sum", {"size": 8}),
    ("spmv", {"rows": 4, "nnz": 2}),
], ids=["matvec", "prefix_sum", "spmv"])
def test_hls_baseline_compiles_through_dse(kernel, params):
    from repro.hls import compile_program

    artifacts = build_kernel(kernel, **params)
    result = compile_program(artifacts.hls_program, artifacts.hls_function)
    assert result.report.dse_evaluations > 0
    assert result.design.modules


def test_sorting_network_has_no_hls_program():
    assert build_kernel("sorting_network", size=4).hls_program is None
