"""Artifact provenance: cached fetches report fetch time, not build time.

Satellite regression: a cache hit used to return the artifact with the
original ``seconds`` — so ``repro build`` after a warm cache printed the
cold-build latency as if the fetch had cost that much.  Cached artifacts
now keep the original build ``seconds`` *and* carry the (tiny)
``fetch_seconds`` of the lookup, and the repr spells out which is which.
"""

import pytest

from repro.flow import Flow
from repro.kernels import build_kernel


@pytest.fixture
def flow():
    return Flow(build_kernel("transpose", size=4))


@pytest.mark.tier1
class TestCachedTiming:
    def test_fresh_build_has_no_fetch_seconds(self, flow):
        artifact = flow.hir()
        assert not artifact.cached
        assert artifact.fetch_seconds is None
        assert artifact.seconds > 0

    def test_cached_fetch_keeps_build_seconds(self, flow):
        cold = flow.hir()
        warm = flow.hir()
        assert warm.cached
        assert warm.seconds == cold.seconds
        assert warm.fetch_seconds is not None
        # A dict lookup, not a rebuild: orders of magnitude under the build.
        assert warm.fetch_seconds < 0.01

    def test_repr_distinguishes_build_from_fetch(self, flow):
        cold = flow.verilog()
        assert "built in" in repr(cold)
        assert "cached" not in repr(cold)
        warm = flow.verilog()
        assert "cached; built in" in repr(warm)
        assert "fetched in" in repr(warm)


class TestProvenance:
    def test_simulate_provenance_names_engine_and_seed(self, flow):
        artifact = flow.simulate(seed=3, engine="interpreted")
        provenance = dict(artifact.provenance)
        assert provenance["engine"] == "interpreted"
        assert provenance["seed"] == "3"
        assert provenance["verilog"] == flow.verilog().fingerprint

    def test_repr_includes_provenance(self, flow):
        artifact = flow.simulate(seed=3, engine="interpreted")
        assert "engine=interpreted" in repr(artifact)
        assert "seed=3" in repr(artifact)

    def test_provenance_fingerprints_are_truncated_in_repr(self, flow):
        artifact = flow.simulate(seed=0, engine="interpreted")
        verilog_fp = dict(artifact.provenance)["verilog"]
        assert verilog_fp[:12] in repr(artifact)
        assert verilog_fp not in repr(artifact)
