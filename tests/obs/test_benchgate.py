"""The bench-regression gate (:mod:`repro.obs.benchgate`).

The committed ``benchmarks/baseline.json`` plus this gate is what turns the
benchmark harness from a dashboard into a CI check; these tests pin the
comparison rules (seconds grow, speedups shrink, vanished benchmarks fail)
and both CLI exit modes against synthetic payloads.
"""

import json
import os

import pytest

from repro.obs.benchgate import (compare, load_records, main, new_records,
                                 slowdown)
from repro.obs.metrics import bench_payload

BASELINE = {
    "simulate/gemm/compiled": {"name": "simulate/gemm/compiled",
                               "seconds": 0.10, "cycles": 500},
    "engine-speedup/gemm-16": {"name": "engine-speedup/gemm-16",
                               "cold_seconds": 0.5, "cold_speedup": 4.0},
}


def write_payload(path, records):
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(bench_payload(records), handle)
    return str(path)


class TestCompare:
    def test_identical_runs_pass(self):
        assert compare(BASELINE, BASELINE) == []

    def test_within_tolerance_passes(self):
        fresh = {"simulate/gemm/compiled":
                 {"name": "simulate/gemm/compiled", "seconds": 0.14},
                 "engine-speedup/gemm-16":
                 {"name": "engine-speedup/gemm-16", "cold_seconds": 0.5,
                  "cold_speedup": 2.8}}
        assert compare(BASELINE, fresh, tolerance=1.5) == []

    def test_slower_seconds_fail(self):
        fresh = {"simulate/gemm/compiled":
                 {"name": "simulate/gemm/compiled", "seconds": 0.16},
                 "engine-speedup/gemm-16":
                 BASELINE["engine-speedup/gemm-16"]}
        problems = compare(BASELINE, fresh, tolerance=1.5)
        assert len(problems) == 1
        assert "seconds regressed" in problems[0]

    def test_shrunk_speedup_fails(self):
        fresh = {"simulate/gemm/compiled":
                 BASELINE["simulate/gemm/compiled"],
                 "engine-speedup/gemm-16":
                 {"name": "engine-speedup/gemm-16", "cold_seconds": 0.5,
                  "cold_speedup": 2.0}}
        problems = compare(BASELINE, fresh, tolerance=1.5)
        assert len(problems) == 1
        assert "cold_speedup fell" in problems[0]

    def test_vanished_benchmark_fails(self):
        fresh = {"simulate/gemm/compiled":
                 BASELINE["simulate/gemm/compiled"]}
        problems = compare(BASELINE, fresh)
        assert any("missing from the fresh run" in p for p in problems)

    def test_non_perf_metrics_are_ignored(self):
        fresh = {"simulate/gemm/compiled":
                 {"name": "simulate/gemm/compiled", "seconds": 0.10,
                  "cycles": 99999},        # cycle drift is not perf
                 "engine-speedup/gemm-16":
                 BASELINE["engine-speedup/gemm-16"]}
        assert compare(BASELINE, fresh) == []

    def test_extra_fresh_benchmarks_are_fine(self):
        fresh = dict(BASELINE)
        fresh["brand-new/bench"] = {"name": "brand-new/bench",
                                    "seconds": 99.0}
        assert compare(BASELINE, fresh) == []

    def test_new_records_lists_baseline_less_names(self):
        fresh = dict(BASELINE)
        fresh["brand-new/bench"] = {"name": "brand-new/bench",
                                    "seconds": 99.0}
        assert new_records(BASELINE, fresh) == ["brand-new/bench"]
        assert new_records(BASELINE, BASELINE) == []

    def test_slowdown_synthesizes_a_regression(self):
        slowed = slowdown(BASELINE, factor=2.0)
        assert slowed["simulate/gemm/compiled"]["seconds"] == 0.20
        assert slowed["engine-speedup/gemm-16"]["cold_speedup"] == 2.0
        assert compare(BASELINE, slowed) != []


class TestCli:
    def test_passing_gate_exits_zero(self, tmp_path, capsys):
        base = write_payload(tmp_path / "base.json",
                             list(BASELINE.values()))
        fresh = write_payload(tmp_path / "fresh.json",
                              list(BASELINE.values()))
        assert main(["--baseline", base, fresh]) == 0
        assert "benchgate: ok" in capsys.readouterr().out

    def test_regression_exits_one(self, tmp_path, capsys):
        base = write_payload(tmp_path / "base.json",
                             list(BASELINE.values()))
        fresh = write_payload(tmp_path / "fresh.json",
                              list(slowdown(BASELINE).values()))
        assert main(["--baseline", base, fresh]) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_new_benchmark_passes_with_a_note(self, tmp_path, capsys):
        base = write_payload(tmp_path / "base.json",
                             list(BASELINE.values()))
        extra = list(BASELINE.values()) + [
            {"name": "engine-speedup/gemm-16-vector", "warm_speedup": 3.5}]
        fresh = write_payload(tmp_path / "fresh.json", extra)
        assert main(["--baseline", base, fresh]) == 0
        out = capsys.readouterr().out
        assert ("benchgate: note — engine-speedup/gemm-16-vector: "
                "no baseline, recorded") in out
        assert "benchgate: ok" in out

    def test_self_test_passes_iff_gate_trips(self, tmp_path, capsys):
        base = write_payload(tmp_path / "base.json",
                             list(BASELINE.values()))
        fresh = write_payload(tmp_path / "fresh.json",
                              list(BASELINE.values()))
        assert main(["--baseline", base, "--self-test", fresh]) == 0
        out = capsys.readouterr().out
        assert "self-test ok" in out
        assert "brand-new record tripped none" in out

    def test_self_test_fails_on_a_toothless_gate(self, tmp_path, capsys):
        # A baseline with no perf metrics gives the gate nothing to check,
        # so the synthetic slowdown sails through — the self-test reports it.
        base = write_payload(tmp_path / "base.json",
                             [{"name": "counts-only", "cycles": 10}])
        fresh = write_payload(tmp_path / "fresh.json",
                              [{"name": "counts-only", "cycles": 10}])
        assert main(["--baseline", base, "--self-test", fresh]) == 1
        assert "SELF-TEST FAILED" in capsys.readouterr().err

    def test_invalid_payload_exits_two(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": 99, "records": []}')
        good = write_payload(tmp_path / "good.json",
                             list(BASELINE.values()))
        assert main(["--baseline", str(bad), good]) == 2
        assert main(["--baseline", good, str(bad)]) == 2


class TestCommittedBaseline:
    def test_committed_baseline_parses_and_has_the_core_records(self):
        path = os.path.join(os.path.dirname(__file__), "..", "..",
                            "benchmarks", "baseline.json")
        records = load_records(os.path.abspath(path))
        assert "engine-speedup/gemm-16" in records
        assert "compile-sweep" in records
        assert any(name.startswith("simulate/") for name in records)
        # the committed baseline must gate itself cleanly
        assert compare(records, records) == []
        assert compare(records, slowdown(records)) != []
