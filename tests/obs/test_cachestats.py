"""The cache registry: every toolchain cache enumerable with live stats."""

from repro.flow import Flow, FlowConfig
from repro.kernels import build_kernel
from repro.obs.cachestats import (
    CacheStats,
    all_cache_stats,
    register_cache,
    registered_caches,
    render_cache_report,
)


class TestCacheStatsValue:
    def test_hit_rate(self):
        stats = CacheStats(name="x", capacity=8, size=2, hits=3, misses=1,
                           evictions=0)
        assert stats.accesses == 4
        assert stats.hit_rate == 0.75

    def test_hit_rate_before_first_access(self):
        stats = CacheStats(name="x", capacity=None, size=0, hits=0, misses=0,
                           evictions=0)
        assert stats.hit_rate == 0.0

    def test_as_dict_round_trips_fields(self):
        stats = CacheStats(name="x", capacity=None, size=1, hits=2, misses=2,
                           evictions=1)
        payload = stats.as_dict()
        assert payload["capacity"] is None
        assert payload["hit_rate"] == 0.5


class TestRegistry:
    def test_builtin_trio_is_registered(self):
        all_cache_stats()  # force-registers the builtins
        names = registered_caches()
        assert {"dse.memo", "flow.stages", "sim.compile"} <= set(names)

    def test_custom_provider_appears_and_is_replaceable(self):
        register_cache("test.custom", lambda: CacheStats(
            name="test.custom", capacity=1, size=1, hits=9, misses=1,
            evictions=0))
        try:
            stats = {s.name: s for s in all_cache_stats()}
            assert stats["test.custom"].hits == 9
        finally:
            from repro.obs import cachestats
            cachestats._PROVIDERS.pop("test.custom", None)

    def test_report_renders_every_cache_with_capacity(self):
        report = render_cache_report()
        assert "sim.compile" in report
        assert "dse.memo" in report
        assert "flow.stages" in report
        assert "hit rate" in report


class TestLiveCounters:
    def test_sim_compile_counts_hits_and_misses(self):
        from repro.sim.engine import cache as sim_cache

        flow = Flow(build_kernel("transpose", size=4))
        design = flow.design

        def snapshot():
            return {s.name: s for s in all_cache_stats()}["sim.compile"]

        before = snapshot()
        from repro.sim.engine import create_simulator
        create_simulator(design, engine="compiled")
        after_miss = snapshot()
        create_simulator(design, engine="compiled")
        after_hit = snapshot()
        assert after_miss.misses == before.misses + 1
        assert after_hit.hits == after_miss.hits + 1
        assert after_hit.size >= 1
        assert after_hit.capacity == sim_cache._cache_capacity()

    def test_flow_stage_cache_counts_and_sizes(self):
        def snapshot():
            return {s.name: s for s in all_cache_stats()}["flow.stages"]

        before = snapshot()
        flow = Flow(build_kernel("transpose", size=4))
        flow.verilog()          # misses hir, optimized, verilog
        mid = snapshot()
        flow.verilog()          # hits hir, optimized, verilog
        after = snapshot()
        assert mid.misses >= before.misses + 3
        assert after.hits >= mid.hits + 3
        assert after.size >= before.size + 3

    def test_flow_stage_size_drops_when_session_dies(self):
        def size():
            return {s.name: s for s in all_cache_stats()}["flow.stages"].size

        flow = Flow(build_kernel("transpose", size=4))
        flow.verilog()
        with_session = size()
        del flow
        assert size() <= with_session - 3

    def test_dse_memo_counts_through_a_compile(self):
        from repro.hls import compile_program
        from repro.hls.dse import clear_schedule_memo

        artifacts = build_kernel("gemm", size=3)
        clear_schedule_memo()   # other tests may have memoized this program

        def snapshot():
            return {s.name: s for s in all_cache_stats()}["dse.memo"]

        before = snapshot()
        compile_program(artifacts.hls_program, artifacts.hls_function)
        after_cold = snapshot()
        compile_program(artifacts.hls_program, artifacts.hls_function)
        after_warm = snapshot()
        assert after_cold.misses > before.misses
        # The second compile re-schedules identical design points.
        assert after_warm.hits > after_cold.hits


class TestConfiguredCapacity:
    def test_flow_limits_override_is_visible_in_stats(self):
        config = FlowConfig(sim_cache_size=3, dse_memo_size=7)
        with config.limits():
            stats = {s.name: s for s in all_cache_stats()}
            assert stats["sim.compile"].capacity == 3
            assert stats["dse.memo"].capacity == 7

    def test_env_capacity_is_visible_in_stats(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_CACHE_SIZE", "5")
        monkeypatch.setenv("REPRO_DSE_MEMO_SIZE", "11")
        stats = {s.name: s for s in all_cache_stats()}
        assert stats["sim.compile"].capacity == 5
        assert stats["dse.memo"].capacity == 11
