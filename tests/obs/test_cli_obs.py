"""CLI observability surface: --trace, --profile and ``repro stats``.

The acceptance contract of the PR: ``python -m repro simulate gemm --trace
out.json`` must leave a Chrome-loadable file with nested Flow-stage and
engine spans even on success or failure, and ``python -m repro stats``
must enumerate every registered cache with live hit rates plus the DSE
counters.
"""

import json

import pytest

from repro.__main__ import main
from repro.obs.tracer import TRACER


@pytest.fixture(autouse=True)
def clean_global_tracer():
    """--trace enables the process-wide tracer; never leak that state."""
    TRACER.clear()
    yield
    TRACER.disable()
    TRACER.clear()


@pytest.mark.tier1
class TestTraceFlag:
    def test_simulate_trace_writes_chrome_loadable_file(self, tmp_path,
                                                        capsys):
        trace = tmp_path / "out.json"
        code = main(["simulate", "gemm", "-p", "size=3",
                     "--trace", str(trace)])
        captured = capsys.readouterr()
        assert code == 0
        assert "wrote Chrome trace" in captured.err

        with open(trace) as handle:
            payload = json.load(handle)
        assert payload["traceEvents"]
        spans = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        names = {s["name"] for s in spans}
        # Flow stages and the engine's run span are both present...
        assert {"flow.hir", "flow.optimized", "flow.verilog",
                "flow.simulate", "sim.run"} <= names
        # ...and properly nested: sim.run sits inside flow.simulate.
        by_name = {s["name"]: s for s in spans}
        outer, inner = by_name["flow.simulate"], by_name["sim.run"]
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1.0

    def test_trace_written_even_when_command_fails(self, tmp_path, capsys):
        trace = tmp_path / "failed.json"
        code = main(["simulate", "gemm", "-p", "size=3",
                     "--engine", "warp-drive", "--trace", str(trace)])
        assert code != 0
        with open(trace) as handle:
            json.load(handle)  # still a valid (possibly sparse) trace

    def test_build_supports_trace(self, tmp_path, capsys):
        trace = tmp_path / "build.json"
        code = main(["build", "gemm", "-p", "size=3", "--trace", str(trace)])
        assert code == 0
        with open(trace) as handle:
            names = {e["name"] for e in json.load(handle)["traceEvents"]}
        assert "flow.verilog" in names


class TestProfileFlag:
    def test_simulate_profile_prints_histograms(self, capsys):
        code = main(["simulate", "gemm", "-p", "size=3", "--profile"])
        captured = capsys.readouterr()
        assert code == 0
        assert "profile [" in captured.err
        assert "cycles" in captured.err

    def test_compose_profile_reports_stream_edges(self, capsys):
        code = main(["compose", "gemm_pipeline", "-p", "size=3",
                     "--profile"])
        captured = capsys.readouterr()
        assert code == 0
        assert "edge " in captured.err  # per-edge stream buffer utilization


@pytest.mark.tier1
class TestStatsCommand:
    def test_stats_reports_every_cache_and_dse_counters(self, capsys):
        code = main(["stats", "gemm", "-p", "size=3", "--seeds", "2"])
        captured = capsys.readouterr()
        assert code == 0
        out = captured.out
        for cache in ("flow.stages", "sim.compile", "dse.memo"):
            assert cache in out
        assert "hit rate" in out
        assert "dse." in out

    def test_stats_tree_view(self, capsys):
        code = main(["stats", "transpose", "-p", "size=4", "--seeds", "2",
                     "--tree"])
        captured = capsys.readouterr()
        assert code == 0
        assert "flow.verilog" in captured.out
