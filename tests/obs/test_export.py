"""Exporters: Chrome trace shape, JSONL round-trip, full-Flow-session trace.

The tier-1 contract of satellite 4: a complete Flow session (build →
optimize → codegen → simulate) produces a Chrome-loadable trace with
properly nested Flow-stage and engine spans, and the JSONL form is lossless
— rebuilding the Chrome trace from it is byte-identical.
"""

import json

import pytest

from repro.flow import Flow, FlowConfig
from repro.kernels import build_kernel
from repro.obs.export import (
    chrome_trace_from_jsonl,
    read_jsonl,
    stats_tree,
    to_chrome_trace,
    to_jsonl_lines,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.tracer import Tracer


@pytest.fixture
def recorded():
    tracer = Tracer()
    tracer.enable()
    with tracer.span("outer", cat="flow", fingerprint="abc"):
        with tracer.span("inner"):
            pass
    tracer.count("hits", 3)
    tracer.gauge("depth", 2.5)
    tracer.event("mark", cat="test", detail="x")
    return tracer


class TestChromeTrace:
    def test_top_level_shape(self, recorded):
        trace = to_chrome_trace(recorded)
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        assert isinstance(trace["traceEvents"], list)

    def test_spans_become_complete_events(self, recorded):
        trace = to_chrome_trace(recorded)
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert {s["name"] for s in spans} == {"outer", "inner"}
        for span in spans:
            assert span["pid"] == 1
            assert span["ts"] >= 0 and span["dur"] >= 0

    def test_nesting_is_preserved_by_timestamps(self, recorded):
        trace = to_chrome_trace(recorded)
        by_name = {e["name"]: e for e in trace["traceEvents"]
                   if e["ph"] == "X"}
        outer, inner = by_name["outer"], by_name["inner"]
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-3

    def test_counters_gauges_events_exported(self, recorded):
        trace = to_chrome_trace(recorded)
        phases = {e["ph"] for e in trace["traceEvents"]}
        assert {"X", "C", "i"} <= phases
        counters = {e["name"]: e["args"]["value"]
                    for e in trace["traceEvents"] if e["ph"] == "C"}
        assert counters == {"hits": 3, "depth": 2.5}

    def test_written_file_is_valid_json(self, recorded, tmp_path):
        path = write_chrome_trace(str(tmp_path / "trace.json"), recorded)
        with open(path) as handle:
            assert json.load(handle)["traceEvents"]


class TestJsonlRoundTrip:
    def test_jsonl_lines_parse_and_tag_kinds(self, recorded):
        records = read_jsonl(to_jsonl_lines(recorded))
        kinds = sorted(r["kind"] for r in records)
        assert kinds == ["counter", "event", "gauge", "span", "span"]

    def test_round_trip_is_lossless(self, recorded, tmp_path):
        direct = to_chrome_trace(recorded)
        path = write_jsonl(str(tmp_path / "trace.jsonl"), recorded)
        rebuilt = chrome_trace_from_jsonl(read_jsonl(path))
        assert json.dumps(rebuilt, sort_keys=True) == \
            json.dumps(direct, sort_keys=True)


@pytest.mark.tier1
class TestFlowSessionTrace:
    """One full Flow session, exported both ways."""

    @pytest.fixture
    def session_tracer(self, monkeypatch):
        # The subsystems record into the global TRACER; swap a private one
        # in so parallel test state never leaks.
        tracer = Tracer()
        for module in ("repro.flow", "repro.ir.pass_manager",
                       "repro.hls.dse", "repro.sim.testbench"):
            monkeypatch.setattr(f"{module}.TRACER", tracer)
        return tracer

    def test_flow_session_round_trips(self, session_tracer, tmp_path):
        flow = Flow(build_kernel("gemm", size=3),
                    config=FlowConfig(trace=True))
        with session_tracer.activated(True):
            flow.validate(seed=0)

        names = {span["name"] for span in session_tracer.spans}
        assert {"flow.hir", "flow.optimized", "flow.verilog",
                "flow.simulate", "sim.run", "pass"} <= names

        # Pass spans nest under the optimize stage; the engine's run span
        # nests under the simulate stage.
        paths = {span["name"]: span["path"] for span in session_tracer.spans}
        assert paths["pass"] == "flow.optimized/pass"
        assert paths["sim.run"] == "flow.simulate/sim.run"

        jsonl = str(tmp_path / "session.jsonl")
        write_jsonl(jsonl, session_tracer)
        rebuilt = chrome_trace_from_jsonl(read_jsonl(jsonl))
        direct = to_chrome_trace(session_tracer)
        assert json.dumps(rebuilt, sort_keys=True) == \
            json.dumps(direct, sort_keys=True)

        tree = stats_tree(session_tracer)
        assert "flow.optimized" in tree and "counters:" in tree


class TestStatsTree:
    def test_empty_tracer(self):
        assert "no recordings" in stats_tree(Tracer())

    def test_aggregates_repeated_paths(self):
        tracer = Tracer()
        tracer.enable()
        for _ in range(4):
            with tracer.span("work"):
                pass
        assert "x4" in stats_tree(tracer)
