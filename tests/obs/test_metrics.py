"""The versioned BENCH_*.json schema and its CI smoke validator."""

import json

import pytest

from repro.obs.metrics import (
    SCHEMA_VERSION,
    bench_payload,
    main,
    validate_bench_file,
    validate_bench_payload,
)


class TestBenchPayload:
    def test_envelope_fields(self):
        payload = bench_payload([{"name": "gemm", "seconds": 0.5}],
                                unix_time=123.0)
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["unix_time"] == 123.0
        assert isinstance(payload["python"], str)
        assert isinstance(payload["platform"], str)

    def test_records_sorted_by_name(self):
        payload = bench_payload([{"name": "zeta", "x": 1},
                                 {"name": "alpha", "x": 2}])
        assert [r["name"] for r in payload["records"]] == ["alpha", "zeta"]

    def test_payload_validates_clean(self):
        payload = bench_payload([{"name": "gemm", "cycles": 53,
                                  "engine": "batched", "ok": True}])
        assert validate_bench_payload(payload) == []

    def test_payload_is_json_serializable(self):
        payload = bench_payload([{"name": "gemm", "seconds": 0.5}])
        assert json.loads(json.dumps(payload)) == payload


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_bench_payload([1, 2]) != []

    def test_rejects_unknown_schema(self):
        payload = bench_payload([])
        payload["schema"] = 99
        assert any("schema" in e for e in validate_bench_payload(payload))

    def test_accepts_legacy_schema_1_without_sort_guarantee(self):
        payload = bench_payload([{"name": "b"}, {"name": "a"}])
        payload["schema"] = 1
        payload["records"] = [{"name": "b"}, {"name": "a"}]
        assert validate_bench_payload(payload) == []

    def test_schema_2_requires_sorted_records(self):
        payload = bench_payload([])
        payload["records"] = [{"name": "b"}, {"name": "a"}]
        assert any("sorted" in e for e in validate_bench_payload(payload))

    def test_rejects_record_without_name(self):
        payload = bench_payload([])
        payload["records"] = [{"seconds": 1.0}]
        assert any("name" in e for e in validate_bench_payload(payload))

    def test_rejects_non_scalar_metric(self):
        payload = bench_payload([])
        payload["records"] = [{"name": "gemm", "series": [1, 2, 3]}]
        assert any("int/float/str/bool" in e
                   for e in validate_bench_payload(payload))

    def test_missing_envelope_fields_reported(self):
        errors = validate_bench_payload({"schema": SCHEMA_VERSION,
                                         "records": []})
        assert any("unix_time" in e for e in errors)
        assert any("python" in e for e in errors)


class TestFileAndCli:
    @pytest.fixture
    def valid_file(self, tmp_path):
        path = tmp_path / "BENCH_sim.json"
        path.write_text(json.dumps(
            bench_payload([{"name": "gemm", "seconds": 0.5}])))
        return str(path)

    @pytest.fixture
    def invalid_file(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps({"schema": 99, "records": "nope"}))
        return str(path)

    def test_validate_bench_file_ok(self, valid_file):
        assert validate_bench_file(valid_file) == []

    def test_validate_bench_file_prefixes_path(self, invalid_file):
        errors = validate_bench_file(invalid_file)
        assert errors and all(e.startswith(invalid_file) for e in errors)

    def test_validate_bench_file_unparseable(self, tmp_path):
        path = tmp_path / "BENCH_broken.json"
        path.write_text("{not json")
        assert any("cannot read/parse" in e
                   for e in validate_bench_file(str(path)))

    def test_cli_ok_exit_zero(self, valid_file, capsys):
        assert main([valid_file]) == 0
        assert "ok" in capsys.readouterr().out

    def test_cli_invalid_exit_one(self, valid_file, invalid_file, capsys):
        assert main([valid_file, invalid_file]) == 1
        captured = capsys.readouterr()
        assert "INVALID" in captured.err

    def test_cli_no_args_exit_two(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().err
