"""Tier-1 guard: tracing must be ~free on the simulation hot path.

The contract of :mod:`repro.obs` is that instrumentation lives at *run*
granularity, never per clock edge: a simulation records one ``sim.run``
span, and every per-edge hook hides behind a ``profiler is None`` check.
This test measures GEMM simulation with the tracer disabled against the
tracer enabled (interleaved min-of-N, same process, same design and
compiled artifacts) and fails if enabling costs more than 2% plus a small
absolute epsilon — i.e. if someone lands a TRACER call inside the cycle
loop, where an enabled tracer would take its lock tens of thousands of
times per run.
"""

import time

import pytest

from repro.kernels import build_kernel
from repro.obs.tracer import TRACER
from repro.sim.testbench import run_design_impl

REPEATS = 7
OVERHEAD_BUDGET = 0.02
#: Absolute slack (seconds) so scheduler noise on a ~10 ms run cannot flake
#: the relative comparison.
EPSILON = 0.003


def _min_seconds(design, memories, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run = run_design_impl(design, memories=dict(memories),
                              engine="interpreted")
        best = min(best, time.perf_counter() - start)
        assert run.done
    return best


@pytest.mark.tier1
def test_disabled_tracer_overhead_under_two_percent():
    artifacts = build_kernel("gemm", size=4)
    design = artifacts.flow().design
    inputs = artifacts.make_inputs(0)
    memories = {name: (memref_type, inputs[name])
                for name, memref_type in artifacts.interfaces.items()}

    assert not TRACER.enabled

    # Warm every lazy path (elaboration cache, numpy imports) before timing.
    _min_seconds(design, memories, repeats=1)

    # Interleave the two measurement sets so frequency scaling or background
    # load hits both the same way.
    disabled = enabled = float("inf")
    for _ in range(REPEATS):
        disabled = min(disabled, _min_seconds(design, memories, repeats=1))
        with TRACER.activated(True):
            enabled = min(enabled, _min_seconds(design, memories, repeats=1))
            TRACER.clear()

    assert enabled <= disabled * (1 + OVERHEAD_BUDGET) + EPSILON, (
        f"enabling the tracer costs more than the 2% budget on a GEMM "
        f"simulate: disabled {disabled * 1e3:.2f} ms, "
        f"enabled {enabled * 1e3:.2f} ms"
    )


@pytest.mark.tier1
def test_enabled_tracer_records_without_changing_results():
    artifacts = build_kernel("gemm", size=3)
    design = artifacts.flow().design
    inputs = artifacts.make_inputs(0)
    memories = {name: (memref_type, inputs[name])
                for name, memref_type in artifacts.interfaces.items()}

    baseline = run_design_impl(design, memories=dict(memories),
                               engine="interpreted")
    with TRACER.activated(True):
        TRACER.clear()
        traced = run_design_impl(design, memories=dict(memories),
                                 engine="interpreted")
        names = {span["name"] for span in TRACER.spans}
    TRACER.clear()
    assert traced.cycles == baseline.cycles
    assert "sim.run" in names
    for name, memory in baseline.memories.items():
        assert (traced.memories[name].as_array() == memory.as_array()).all()
