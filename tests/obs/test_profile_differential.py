"""Profiles are architectural: bit-identical across every engine.

For every registered kernel (and one composed scenario) the per-op firing
counts, per-cycle event histogram, interface-port occupancy and memory
write traffic collected by the profiler must compare equal — as exact
dictionaries, via :meth:`SimProfile.signature` — between the interpreted,
compiled and batched engines.  Any divergence means an engine evaluates
state updates differently from the architecture (e.g. counting evaluation
instead of value changes), which is exactly the class of bug the profiler
must never exhibit.
"""

import pytest

from repro.flow import Flow, FlowConfig
from repro.kernels import build_kernel, kernel_names
from repro.obs.simprofile import BatchSimProfiler, SimProfiler
from repro.sim.testbench import run_design_impl
from repro.sim.engine.batch import run_design_batch_impl

#: Tier-1 sizes for every registered kernel.
PROFILE_PARAMS = {
    "transpose": {"size": 4},
    "stencil_1d": {"size": 8},
    "histogram": {"pixels": 16, "bins": 8},
    "gemm": {"size": 3},
    "convolution": {"size": 4},
    "fifo": {"depth": 8},
    "matvec": {"size": 4},
    "prefix_sum": {"size": 8},
    "spmv": {"rows": 4, "nnz": 2},
    "sorting_network": {"size": 4},
}


def test_every_registered_kernel_is_covered():
    assert sorted(PROFILE_PARAMS) == sorted(kernel_names()), (
        "a kernel was registered without adding it to the profile "
        "differential matrix"
    )


def _profiles_for(artifacts, seed=1):
    """One stimulus set through all three engines, profiled."""
    design = artifacts.flow().design
    inputs = artifacts.make_inputs(seed)
    memories = {name: (memref_type, inputs[name])
                for name, memref_type in artifacts.interfaces.items()}
    external_models = getattr(artifacts, "external_models", None) or None

    profiles = {}
    for engine in ("interpreted", "compiled"):
        run = run_design_impl(design, memories=dict(memories),
                              external_models=external_models,
                              engine=engine, profiler=SimProfiler())
        assert run.done, f"{artifacts.name} never finished on {engine}"
        profiles[engine] = run.profile
    batch = run_design_batch_impl(
        design,
        memories={name: (memref_type, [inputs[name]])
                  for name, memref_type in artifacts.interfaces.items()},
        external_models=external_models,
        profiler=BatchSimProfiler())
    assert batch.done[0]
    profiles["batched"] = batch.profiles[0]
    return profiles


@pytest.mark.tier1
@pytest.mark.parametrize("name", sorted(PROFILE_PARAMS))
def test_profile_identical_across_engines(name):
    artifacts = build_kernel(name, **PROFILE_PARAMS[name])
    profiles = _profiles_for(artifacts)
    reference = profiles["interpreted"].signature()
    assert profiles["compiled"].signature() == reference
    assert profiles["batched"].signature() == reference
    # The label is the only engine-dependent field.
    assert profiles["compiled"].engine == "compiled"
    assert profiles["batched"].engine == "batched"


@pytest.mark.parametrize("name", sorted(PROFILE_PARAMS))
def test_profile_is_seed_sensitive_but_port_stable(name):
    """Different stimuli keep the same port schedule on these static
    kernels (the schedule is data-independent); the profiler must report
    that stability rather than noise."""
    artifacts = build_kernel(name, **PROFILE_PARAMS[name])
    first = _profiles_for(artifacts, seed=1)["interpreted"]
    second = _profiles_for(artifacts, seed=2)["interpreted"]
    assert first.cycles == second.cycles
    assert {k: v.as_dict() for k, v in first.ports.items()} == \
        {k: v.as_dict() for k, v in second.ports.items()}


@pytest.mark.tier1
def test_composed_scenario_profiles_identical_and_bind_edges():
    flow = Flow.from_scenario("gemm_pipeline", size=3,
                              config=FlowConfig(profile=True))
    outcomes = {}
    for engine in ("interpreted", "compiled"):
        outcomes[engine] = flow.simulate(seed=0, engine=engine).value
    batch = flow.simulate_batch(seeds=[0]).value

    reference = outcomes["interpreted"].profile.signature()
    assert outcomes["compiled"].profile.signature() == reference
    assert batch.profiles[0].signature() == reference

    # Every stream edge of the graph maps onto an internal buffer profile,
    # and streamed traffic is visible on it.
    edges = outcomes["interpreted"].profile.stream_edges
    assert sorted(edges) == sorted(e.buffer_name for e in flow.graph.edges)
    assert all(mem.writes > 0 for mem in edges.values())

    batch_edges = batch.profiles[0].stream_edges
    assert {k: v.as_dict() for k, v in batch_edges.items()} == \
        {k: v.as_dict() for k, v in edges.items()}


@pytest.mark.tier1
def test_differential_engine_profiles_like_the_interpreter():
    artifacts = build_kernel("gemm", size=3)
    design = artifacts.flow().design
    inputs = artifacts.make_inputs(0)
    memories = {name: (memref_type, inputs[name])
                for name, memref_type in artifacts.interfaces.items()}
    run = run_design_impl(design, memories=dict(memories),
                          engine="differential", profiler=SimProfiler())
    reference = run_design_impl(design, memories=dict(memories),
                                engine="interpreted", profiler=SimProfiler())
    assert run.profile.signature() == reference.profile.signature()
