"""Tracer core: spans, counters, events, forking, the off-by-default rule."""

import threading

import pytest

from repro.obs.tracer import TRACER, Tracer, tracing


@pytest.fixture
def tracer():
    return Tracer()


class TestDisabledTracer:
    def test_disabled_records_nothing(self, tracer):
        with tracer.span("work", cat="test"):
            tracer.count("n")
            tracer.gauge("g", 1.0)
            tracer.event("e")
        assert tracer.spans == []
        assert tracer.counters == {}
        assert tracer.gauges == {}
        assert list(tracer.events) == []

    def test_disabled_span_is_shared_null_object(self, tracer):
        assert tracer.span("a") is tracer.span("b")

    def test_global_tracer_starts_disabled(self):
        assert TRACER.enabled is False


class TestSpans:
    def test_span_records_name_cat_args(self, tracer):
        tracer.enable()
        with tracer.span("stage", cat="flow", fingerprint="abc"):
            pass
        (span,) = tracer.spans
        assert span["name"] == "stage"
        assert span["cat"] == "flow"
        assert span["args"] == {"fingerprint": "abc"}
        assert span["dur"] >= 0

    def test_spans_nest_via_path(self, tracer):
        tracer.enable()
        with tracer.span("outer"):
            with tracer.span("inner"):
                with tracer.span("leaf"):
                    pass
        paths = sorted(span["path"] for span in tracer.spans)
        assert paths == ["outer", "outer/inner", "outer/inner/leaf"]

    def test_sibling_spans_share_parent_path(self, tracer):
        tracer.enable()
        with tracer.span("parent"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        paths = {span["path"] for span in tracer.spans}
        assert paths == {"parent", "parent/a", "parent/b"}

    def test_set_attaches_attributes_while_open(self, tracer):
        tracer.enable()
        with tracer.span("s") as span:
            span.set(cycles=42)
        assert tracer.spans[0]["args"]["cycles"] == 42

    def test_spans_nest_per_thread(self, tracer):
        tracer.enable()
        seen = []

        def worker(name):
            with tracer.span(name):
                seen.append(name)

        with tracer.span("main"):
            thread = threading.Thread(target=worker, args=("t1",))
            thread.start()
            thread.join()
        by_name = {s["name"]: s for s in tracer.spans}
        # The worker's span is a root on its own thread, not nested in main.
        assert by_name["t1"]["path"] == "t1"
        assert by_name["t1"]["tid"] != by_name["main"]["tid"]


class TestCountersAndEvents:
    def test_count_accumulates(self, tracer):
        tracer.enable()
        tracer.count("n")
        tracer.count("n", 4)
        assert tracer.counters["n"] == 5

    def test_gauge_keeps_latest(self, tracer):
        tracer.enable()
        tracer.gauge("g", 1.0)
        tracer.gauge("g", 7.5)
        assert tracer.gauges["g"] == 7.5

    def test_event_ring_is_bounded(self, tracer):
        tracer.enable()
        capacity = tracer.events.maxlen
        for index in range(capacity + 10):
            tracer.event("e", index=index)
        assert len(tracer.events) == capacity
        assert tracer.events[-1]["args"]["index"] == capacity + 9

    def test_clear_resets_everything_but_enabled(self, tracer):
        tracer.enable()
        with tracer.span("s"):
            tracer.count("n")
        tracer.clear()
        assert tracer.spans == [] and tracer.counters == {}
        assert tracer.enabled


class TestActivation:
    def test_activated_enables_for_block(self, tracer):
        with tracer.activated(True):
            assert tracer.enabled
        assert not tracer.enabled

    def test_activated_false_is_noop(self, tracer):
        with tracer.activated(False):
            assert not tracer.enabled

    def test_nested_activation_never_disables_outer(self, tracer):
        with tracer.activated(True):
            with tracer.activated(True):
                pass
            assert tracer.enabled, "inner exit must not disable the outer"

    def test_tracing_helper_targets_global(self):
        assert not TRACER.enabled
        with tracing():
            assert TRACER.enabled
        assert not TRACER.enabled


class TestForkMerge:
    def test_fork_shares_origin_and_enabled(self, tracer):
        tracer.enable()
        child = tracer.fork("w0")
        assert child.origin == tracer.origin
        assert child.enabled

    def test_merge_sums_counters_and_remaps_tids(self, tracer):
        tracer.enable()
        tracer.count("n", 1)
        children = []
        for index in range(3):
            child = tracer.fork(f"w{index}")
            with child.span("job"):
                child.count("n", 10)
            children.append(child)
        for child in children:
            tracer.merge(child)
        assert tracer.counters["n"] == 31
        # Each child renders as its own track even on pooled threads.
        tids = [span["tid"] for span in tracer.spans]
        assert len(set(tids)) == 3

    def test_merge_order_is_deterministic(self):
        def run(order):
            parent = Tracer()
            parent.enable()
            children = [parent.fork(f"w{i}") for i in range(3)]
            for index, child in enumerate(children):
                with child.span(f"job{index}"):
                    pass
            for index in order:
                parent.merge(children[index])
            return [(s["name"], s["tid"]) for s in parent.spans]

        assert run([0, 1, 2]) == run([0, 1, 2])
