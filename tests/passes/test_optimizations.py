"""Tests for the optimization passes (Sections 6.2–6.4)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import verify
from repro.ir.types import I32, IntegerType
from repro.hir import DesignBuilder, MemrefType
from repro.hir.ops import AddOp, ConstantOp, DelayOp, ForOp, MultOp, ShlOp
from repro.passes import (
    CanonicalizePass,
    ConstantPropagationPass,
    CSEPass,
    DelayEliminationPass,
    MemPortOptimizationPass,
    PrecisionOptimizationPass,
    StrengthReductionPass,
    optimization_pipeline,
    verification_pipeline,
    verify_schedule,
)
from repro.passes.common import signed_range_width


def ops_of(module, op_class):
    return [op for op in module.walk() if isinstance(op, op_class)]


class TestConstantPropagation:
    def _module_with_constant_expr(self):
        design = DesignBuilder("d")
        out = MemrefType((8,), I32, port="w")
        with design.func("f", [("C", out)]) as f:
            value = f.add(f.mult(f.constant(3, I32), f.constant(4, I32)),
                          f.constant(5, I32))
            f.mem_write(value, f.arg("C"), [0], time=f.time)
            f.return_()
        return design.module

    def test_folds_to_single_constant(self):
        module = self._module_with_constant_expr()
        ConstantPropagationPass().run(module)
        CanonicalizePass().run(module)
        assert not ops_of(module, MultOp)
        assert not ops_of(module, AddOp)
        values = {op.value for op in ops_of(module, ConstantOp)}
        assert 17 in values

    def test_records_statistics(self):
        module = self._module_with_constant_expr()
        pass_ = ConstantPropagationPass()
        pass_.run(module)
        assert pass_.statistics.get("ops-folded", 0) >= 2

    def test_wraps_to_result_width(self):
        design = DesignBuilder("d")
        out = MemrefType((8,), IntegerType(8), port="w")
        with design.func("f", [("C", out)]) as f:
            big = f.add(f.constant(200, IntegerType(8)), f.constant(100, IntegerType(8)))
            f.mem_write(big, f.arg("C"), [0], time=f.time)
            f.return_()
        ConstantPropagationPass().run(design.module)
        folded = [op for op in ops_of(design.module, ConstantOp)
                  if op.results[0].type == IntegerType(8) and op.results[0].has_uses]
        assert folded and folded[0].value == IntegerType(8).wrap(300)


class TestCanonicalizeAndCSE:
    def test_add_zero_removed(self):
        design = DesignBuilder("d")
        out = MemrefType((8,), I32, port="w")
        with design.func("f", [("x", I32), ("C", out)]) as f:
            f.mem_write(f.add(f.arg("x"), f.constant(0, I32)), f.arg("C"), [0],
                        time=f.time)
            f.return_()
        CanonicalizePass().run(design.module)
        assert not ops_of(design.module, AddOp)

    def test_dce_removes_unused_pure_ops(self):
        design = DesignBuilder("d")
        with design.func("f", [("x", I32)]) as f:
            f.add(f.arg("x"), f.arg("x"))   # dead
            f.mult(f.arg("x"), f.arg("x"))  # dead
            f.return_()
        CanonicalizePass().run(design.module)
        assert not ops_of(design.module, AddOp)
        assert not ops_of(design.module, MultOp)

    def test_cse_merges_duplicate_adds(self):
        design = DesignBuilder("d")
        out = MemrefType((8,), I32, port="w")
        with design.func("f", [("x", I32), ("C", out)]) as f:
            first = f.add(f.arg("x"), f.constant(1, I32))
            second = f.add(f.arg("x"), f.constant(1, I32))
            f.mem_write(first, f.arg("C"), [0], time=f.time)
            f.mem_write(second, f.arg("C"), [1], time=f.time, offset=1)
            f.return_()
        CSEPass().run(design.module)
        assert len(ops_of(design.module, AddOp)) == 1

    def test_cse_respects_commutativity(self):
        design = DesignBuilder("d")
        out = MemrefType((8,), I32, port="w")
        with design.func("f", [("x", I32), ("y", I32), ("C", out)]) as f:
            first = f.add(f.arg("x"), f.arg("y"))
            second = f.add(f.arg("y"), f.arg("x"))
            f.mem_write(first, f.arg("C"), [0], time=f.time)
            f.mem_write(second, f.arg("C"), [1], time=f.time, offset=1)
            f.return_()
        CSEPass().run(design.module)
        assert len(ops_of(design.module, AddOp)) == 1

    def test_cse_outer_value_reused_in_nested_region(self):
        design = DesignBuilder("d")
        out = MemrefType((8,), I32, port="w")
        with design.func("f", [("x", I32), ("C", out)]) as f:
            outer = f.add(f.arg("x"), f.constant(2, I32))
            with f.for_loop(0, 4, 1, time=f.time, iter_offset=1) as loop:
                inner = f.add(f.arg("x"), f.constant(2, I32))
                f.mem_write(inner, f.arg("C"), [f.delay(loop.iv, 0, loop.time)],
                            time=loop.time)
                f.yield_(loop.time, offset=1)
            f.mem_write(outer, f.arg("C"), [0], time=f.time)
            f.return_()
        CSEPass().run(design.module)
        assert len(ops_of(design.module, AddOp)) == 1
        verify(design.module)


class TestStrengthReduction:
    def _design_with_mult_by(self, constant):
        design = DesignBuilder("d")
        out = MemrefType((8,), I32, port="w")
        with design.func("f", [("x", I32), ("C", out)]) as f:
            f.mem_write(f.mult(f.arg("x"), f.constant(constant, I32)),
                        f.arg("C"), [0], time=f.time)
            f.return_()
        return design.module

    def test_power_of_two_becomes_shift(self):
        module = self._design_with_mult_by(8)
        StrengthReductionPass().run(module)
        assert not ops_of(module, MultOp)
        assert len(ops_of(module, ShlOp)) == 1

    def test_two_set_bits_become_shift_add(self):
        module = self._design_with_mult_by(10)  # 8 + 2
        StrengthReductionPass().run(module)
        assert not ops_of(module, MultOp)
        assert len(ops_of(module, ShlOp)) == 2
        assert len(ops_of(module, AddOp)) == 1

    def test_mult_by_one_removed(self):
        module = self._design_with_mult_by(1)
        StrengthReductionPass().run(module)
        assert not ops_of(module, MultOp)

    def test_dense_constant_left_alone(self):
        module = self._design_with_mult_by(7)  # three set bits > max_terms
        StrengthReductionPass().run(module)
        assert len(ops_of(module, MultOp)) == 1

    def test_variable_times_variable_left_alone(self):
        design = DesignBuilder("d")
        out = MemrefType((8,), I32, port="w")
        with design.func("f", [("x", I32), ("y", I32), ("C", out)]) as f:
            f.mem_write(f.mult(f.arg("x"), f.arg("y")), f.arg("C"), [0], time=f.time)
            f.return_()
        StrengthReductionPass().run(design.module)
        assert len(ops_of(design.module, MultOp)) == 1

    @settings(max_examples=30, deadline=None)
    @given(x=st.integers(min_value=-(2 ** 20), max_value=2 ** 20),
           constant=st.sampled_from([0, 1, 2, 4, 6, 8, 16, 24, 1024]))
    def test_rewrite_preserves_value(self, x, constant):
        """Property: the shift/add decomposition equals the multiplication."""
        bits = [i for i in range(constant.bit_length()) if constant >> i & 1]
        rewritten = sum(x << b for b in bits)
        assert rewritten == x * constant


class TestPrecisionOptimization:
    def test_loop_counters_are_narrowed(self):
        from repro.kernels import transpose
        module = transpose.build_hir(16).module
        PrecisionOptimizationPass().run(module)
        widths = {op.iv_type.width for op in ops_of(module, ForOp)}
        assert widths == {6}  # 0..16 in signed 6 bits

    def test_stats_report_bits_saved(self):
        from repro.kernels import transpose
        module = transpose.build_hir(16).module
        pass_ = PrecisionOptimizationPass()
        pass_.run(module)
        assert pass_.statistics.get("bits-saved", 0) >= 2 * (32 - 6)

    def test_delay_result_type_follows_narrowed_input(self):
        from repro.kernels import transpose
        module = transpose.build_hir(16).module
        PrecisionOptimizationPass().run(module)
        delays = ops_of(module, DelayOp)
        assert delays and all(d.results[0].type == d.value.type for d in delays)
        verify(module)

    def test_signed_range_width(self):
        assert signed_range_width(0, 15) == 5
        assert signed_range_width(0, 16) == 6
        assert signed_range_width(-8, 7) == 4
        assert signed_range_width(0, 0) == 1

    @given(low=st.integers(min_value=-1000, max_value=1000),
           span=st.integers(min_value=0, max_value=1000))
    def test_signed_range_width_bounds(self, low, span):
        high = low + span
        width = signed_range_width(low, high)
        assert -(1 << (width - 1)) <= low and high <= (1 << (width - 1)) - 1
        if width > 1:
            smaller = width - 1
            assert not (-(1 << (smaller - 1)) <= low and high <= (1 << (smaller - 1)) - 1)


class TestDelayEliminationAndMemPort:
    def test_duplicate_delays_merged(self):
        design = DesignBuilder("d")
        out = MemrefType((8,), I32, port="w")
        with design.func("f", [("x", I32), ("C", out)]) as f:
            first = f.delay(f.arg("x"), 2, time=f.time)
            second = f.delay(f.arg("x"), 2, time=f.time)
            f.mem_write(first, f.arg("C"), [0], time=f.time, offset=2)
            f.mem_write(second, f.arg("C"), [1], time=f.time, offset=3)
            f.return_()
        pass_ = DelayEliminationPass()
        pass_.run(design.module)
        assert len(ops_of(design.module, DelayOp)) == 1
        assert pass_.statistics.get("duplicate-delays-removed") == 1

    def test_constant_delay_removed(self):
        design = DesignBuilder("d")
        out = MemrefType((8,), I32, port="w")
        with design.func("f", [("C", out)]) as f:
            value = f.delay(f.constant(5, I32), 3, time=f.time)
            f.mem_write(value, f.arg("C"), [0], time=f.time, offset=3)
            f.return_()
        DelayEliminationPass().run(design.module)
        assert not ops_of(design.module, DelayOp)

    def test_share_group_annotation(self):
        design = DesignBuilder("d")
        out = MemrefType((8,), I32, port="w")
        with design.func("f", [("x", I32), ("C", out)]) as f:
            short = f.delay(f.arg("x"), 1, time=f.time)
            long = f.delay(f.arg("x"), 3, time=f.time)
            f.mem_write(short, f.arg("C"), [0], time=f.time, offset=1)
            f.mem_write(long, f.arg("C"), [1], time=f.time, offset=3)
            f.return_()
        pass_ = DelayEliminationPass()
        pass_.run(design.module)
        delays = ops_of(design.module, DelayOp)
        assert all(d.has_attr("share_group") for d in delays)
        assert pass_.statistics.get("registers-shared") == 1

    def test_non_overlapping_ports_marked_single_port(self):
        design = DesignBuilder("d")
        with design.func("f", []) as f:
            reader, writer = f.alloc((16,), I32, ports=("r", "w"))
            f.mem_write(1, writer, [0], time=f.time, offset=0)
            f.mem_read(reader, [0], time=f.time, offset=2)
            f.return_()
        pass_ = MemPortOptimizationPass()
        pass_.run(design.module)
        alloc = next(op for op in design.module.walk() if op.name == "hir.alloc")
        assert alloc.get_attr("single_port") is not None

    def test_overlapping_ports_not_marked(self):
        design = DesignBuilder("d")
        with design.func("f", []) as f:
            reader, writer = f.alloc((16,), I32, ports=("r", "w"))
            f.mem_write(1, writer, [0], time=f.time, offset=1)
            f.mem_read(reader, [1], time=f.time, offset=1)
            f.return_()
        MemPortOptimizationPass().run(design.module)
        alloc = next(op for op in design.module.walk() if op.name == "hir.alloc")
        assert alloc.get_attr("single_port") is None


class TestPipelines:
    def test_optimization_pipeline_preserves_validity(self):
        from repro.kernels import build_kernel
        for name, params in {"transpose": {"size": 8},
                             "stencil_1d": {"size": 16},
                             "histogram": {"pixels": 16, "bins": 16}}.items():
            module = build_kernel(name, **params).module
            optimization_pipeline().run(module)
            verify(module)
            assert verify_schedule(module).ok

    def test_optimized_transpose_still_computes_transpose(self):
        from repro.kernels import transpose
        from repro.verilog import generate_verilog
        from repro.sim import run_design
        artifacts = transpose.build(8)
        optimization_pipeline(verify_each=False).run(artifacts.module)
        design = generate_verilog(artifacts.module, top="transpose").design
        inputs = artifacts.make_inputs(5)
        run = run_design(design, memories={
            name: (t, inputs[name]) for name, t in artifacts.interfaces.items()})
        assert np.array_equal(run.memory_array("Co"), np.asarray(inputs["Ai"]).T)

    def test_verification_pipeline_raises_on_bad_schedule(self):
        from repro.evaluation.figures import build_array_add
        from repro.ir import ScheduleError
        with pytest.raises(ScheduleError):
            verification_pipeline().run(build_array_add(correct=False))
