"""Tests for the schedule verifier (Section 6.1, Figures 1 and 2)."""

import pytest

from repro.ir import ScheduleError
from repro.ir.types import I32
from repro.hir import DesignBuilder, MemrefType
from repro.passes import (
    CROSS_REGION_USE,
    INVALID_OPERAND_TIME,
    PIPELINE_IMBALANCE,
    PORT_CONFLICT,
    RESULT_DELAY_MISMATCH,
    ScheduleVerifierPass,
    verify_schedule,
)
from repro.evaluation.figures import build_array_add, build_mac


class TestFigure1:
    def test_broken_design_reports_invalid_operand_time(self):
        report = verify_schedule(build_array_add(correct=False))
        assert not report.ok
        kinds = [d.kind for d in report.diagnostics]
        assert INVALID_OPERAND_TIME in kinds

    def test_diagnostic_mentions_the_induction_variable_and_ii(self):
        report = verify_schedule(build_array_add(correct=False))
        message = report.of_kind(INVALID_OPERAND_TIME)[0].message
        assert "%i" in message
        assert "initiation interval 1" in message
        assert "hir.delay" in message

    def test_fixed_design_passes(self):
        assert verify_schedule(build_array_add(correct=True)).ok

    def test_raise_on_error(self):
        with pytest.raises(ScheduleError):
            verify_schedule(build_array_add(correct=False), raise_on_error=True)

    def test_pass_wrapper_records_statistics(self):
        verifier = ScheduleVerifierPass(raise_on_error=False)
        verifier.run(build_array_add(correct=False))
        assert verifier.statistics["errors-found"] >= 1
        assert verifier.statistics["functions-verified"] == 1


class TestFigure2:
    def test_three_stage_multiplier_is_imbalanced(self):
        report = verify_schedule(build_mac(multiplier_stages=3))
        kinds = {d.kind for d in report.diagnostics}
        assert PIPELINE_IMBALANCE in kinds
        assert RESULT_DELAY_MISMATCH in kinds

    def test_imbalance_message_names_both_times(self):
        report = verify_schedule(build_mac(multiplier_stages=3))
        message = report.of_kind(PIPELINE_IMBALANCE)[0].message
        assert "%t+3" in message and "%t+2" in message

    def test_two_stage_multiplier_is_balanced(self):
        assert verify_schedule(build_mac(multiplier_stages=2)).ok


class TestOtherDiagnostics:
    def test_cross_region_use(self):
        design = DesignBuilder("d")
        a = MemrefType((8,), I32, port="r")
        c = MemrefType((8,), I32, port="w")
        with design.func("f", [("A", a), ("C", c)]) as f:
            with f.for_loop(0, 8, 1, time=f.time, iter_offset=1) as first:
                value = f.mem_read(f.arg("A"), [first.iv], time=first.time)
                f.yield_(first.time, offset=2)
            with f.for_loop(0, 8, 1, time=first.done, iter_offset=1,
                            iv_name="j") as second:
                # 'value' was produced relative to the first loop's iteration
                # time; consuming it here crosses time regions.
                f.mem_write(value, f.arg("C"), [f.delay(second.iv, 1, second.time)],
                            time=second.time, offset=1)
                f.yield_(second.time, offset=2)
            f.return_()
        report = verify_schedule(design.module)
        assert report.of_kind(CROSS_REGION_USE)

    def test_same_bank_port_conflict(self):
        design = DesignBuilder("d")
        out = MemrefType((8,), I32, port="w")
        with design.func("f", [("C", out)]) as f:
            # Two writes to different addresses of the same port in one cycle.
            f.mem_write(1, f.arg("C"), [0], time=f.time, offset=1)
            f.mem_write(2, f.arg("C"), [1], time=f.time, offset=1)
            f.return_()
        report = verify_schedule(design.module)
        assert report.of_kind(PORT_CONFLICT)

    def test_same_address_parallel_access_is_allowed(self):
        design = DesignBuilder("d")
        out = MemrefType((8,), I32, port="w")
        with design.func("f", [("C", out)]) as f:
            f.mem_write(1, f.arg("C"), [3], time=f.time, offset=1)
            f.mem_write(1, f.arg("C"), [3], time=f.time, offset=1)
            f.return_()
        assert verify_schedule(design.module).ok

    def test_different_banks_parallel_access_is_allowed(self):
        design = DesignBuilder("d")
        with design.func("f", []) as f:
            reader, writer = f.alloc((2,), I32, ports=("r", "w"), packing=[])
            f.mem_write(1, writer, [0], time=f.time)
            f.mem_write(2, writer, [1], time=f.time)
            f.return_()
        assert verify_schedule(design.module).ok

    def test_result_delay_mismatch(self):
        design = DesignBuilder("d")
        with design.func("f", [("x", I32)], result_types=[I32],
                         result_delays=[2]) as f:
            f.return_([f.delay(f.arg("x"), 1, time=f.time)])
        report = verify_schedule(design.module)
        assert report.of_kind(RESULT_DELAY_MISMATCH)

    def test_correct_result_delay_passes(self):
        design = DesignBuilder("d")
        with design.func("f", [("x", I32)], result_types=[I32],
                         result_delays=[2]) as f:
            f.return_([f.delay(f.arg("x"), 2, time=f.time)])
        assert verify_schedule(design.module).ok


class TestStableValueRules:
    def test_outer_iv_usable_in_nested_loop(self):
        """Listing 1: %i (outer IV) indexes a memref inside the j-loop."""
        from repro.kernels import transpose
        assert verify_schedule(transpose.build_hir(4).module).ok

    def test_pure_expression_of_outer_iv_is_stable(self):
        """Convolution-style row address (outer IV + constant) in inner loop."""
        from repro.kernels import convolution
        assert verify_schedule(convolution.build_hir(6).module).ok

    def test_stable_scalar_args_usable_in_loops(self):
        from repro.kernels import stencil1d
        assert verify_schedule(stencil1d.build_hir(16).module).ok

    def test_every_kernel_schedule_is_clean(self):
        from repro.kernels import build_kernel
        for name, params in {
            "transpose": {"size": 8}, "stencil_1d": {"size": 16},
            "histogram": {"pixels": 16, "bins": 16}, "gemm": {"size": 2},
            "convolution": {"size": 6}, "fifo": {"depth": 16},
        }.items():
            report = verify_schedule(build_kernel(name, **params).module)
            assert report.ok, f"{name}: {report.render()}"

    def test_report_render_mentions_kind(self):
        report = verify_schedule(build_array_add(correct=False))
        assert "invalid-operand-time" in report.render()
        assert "error" in report.render()

    def test_ok_report_render(self):
        report = verify_schedule(build_array_add(correct=True))
        assert "no errors" in report.render()
