"""Tests for the hir.unroll_for lowering (full replication, Section 7.3)."""

from repro.ir import verify
from repro.ir.types import I32
from repro.hir import DesignBuilder, MemrefType
from repro.hir.ops import ConstantOp, ForOp, MemWriteOp, UnrollForOp
from repro.passes import verify_schedule
from repro.passes.unroll import LoopUnrollPass, unroll_all


def ops_of(module, op_class):
    return [op for op in module.walk() if isinstance(op, op_class)]


def build_parallel_writes(n=4, interval=1):
    design = DesignBuilder("d")
    out = MemrefType((8,), I32, port="w")
    with design.func("f", [("C", out)]) as f:
        with f.unroll_for(0, n, 1, time=f.time, iter_offset=1, iv_name="u") as loop:
            f.yield_(loop.time, offset=interval)
            f.mem_write(loop.iv, f.arg("C"), [loop.iv], time=loop.time)
        f.return_()
    return design.module


class TestUnrollPass:
    def test_unroll_replicates_body(self):
        module = build_parallel_writes(n=4)
        unroll_all(module)
        assert not ops_of(module, UnrollForOp)
        assert len(ops_of(module, MemWriteOp)) == 4
        verify(module)

    def test_iteration_offsets_are_staggered(self):
        module = build_parallel_writes(n=4, interval=2)
        unroll_all(module)
        offsets = sorted(op.offset for op in ops_of(module, MemWriteOp))
        assert offsets == [1, 3, 5, 7]

    def test_parallel_iterations_share_offset(self):
        module = build_parallel_writes(n=3, interval=0)
        unroll_all(module)
        offsets = {op.offset for op in ops_of(module, MemWriteOp)}
        assert offsets == {1}

    def test_induction_variable_becomes_constant(self):
        module = build_parallel_writes(n=3)
        unroll_all(module)
        constant_values = sorted(
            op.value for op in ops_of(module, ConstantOp)
            if str(op.results[0].type) == "!hir.const" and op.results[0].has_uses
        )
        assert constant_values == [0, 1, 2]

    def test_pass_records_statistics(self):
        pass_ = LoopUnrollPass()
        pass_.run(build_parallel_writes())
        assert pass_.statistics.get("loops-unrolled") == 1

    def test_nested_unroll_and_inner_for_loop(self):
        """The GEMM compute phase: unroll x unroll with a pipelined for inside."""
        from repro.kernels import gemm
        module = gemm.build_hir(2).module
        unroll_all(module)
        assert not ops_of(module, UnrollForOp)
        # One MAC for-loop per PE survives the unrolling.
        mac_loops = [op for op in ops_of(module, ForOp)
                     if op.induction_var.name_hint == "k"]
        assert len(mac_loops) == 4
        verify(module)

    def test_unrolled_module_schedule_still_verifies(self):
        from repro.kernels import gemm
        module = gemm.build_hir(2).module
        unroll_all(module)
        assert verify_schedule(module).ok

    def test_unrolling_is_idempotent(self):
        module = build_parallel_writes(n=4)
        unroll_all(module)
        before = len(list(module.walk()))
        unroll_all(module)
        assert len(list(module.walk())) == before
