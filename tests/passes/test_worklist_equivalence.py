"""Golden tests: worklist passes == legacy full-re-walk passes, bit for bit.

The fast compile path replaces fixpoint re-walks with worklist rewriting and
cached analyses; these tests pin its output to the seed implementations kept
in :mod:`repro.passes.legacy` — same final IR text, same emitted Verilog —
for every evaluation kernel.
"""

import pytest

from repro.ir import PassManager, print_module
from repro.ir.rewriter import PatternRewriter, RewritePattern
from repro.kernels import build_kernel
from repro.passes import optimization_pipeline
from repro.verilog import generate_verilog
from repro.verilog.emitter import emit_design

KERNEL_PARAMS = {
    "transpose": {"size": 8},
    "stencil_1d": {"size": 32},
    "histogram": {"pixels": 64, "bins": 64},
    "gemm": {"size": 4},
    "convolution": {"size": 8},
    "fifo": {"depth": 64},
}


@pytest.mark.parametrize("kernel", sorted(KERNEL_PARAMS))
def test_worklist_pipeline_matches_legacy_bit_for_bit(kernel):
    params = KERNEL_PARAMS[kernel]

    legacy_artifacts = build_kernel(kernel, **params)
    optimization_pipeline(verify_each=False,
                          legacy=True).run(legacy_artifacts.module)
    legacy_ir = print_module(legacy_artifacts.module)
    legacy_verilog = emit_design(
        generate_verilog(legacy_artifacts.module,
                         top=legacy_artifacts.top).design)

    fast_artifacts = build_kernel(kernel, **params)
    optimization_pipeline(verify_each=False).run(fast_artifacts.module)
    fast_ir = print_module(fast_artifacts.module)
    fast_verilog = emit_design(
        generate_verilog(fast_artifacts.module, top=fast_artifacts.top).design)

    assert fast_ir == legacy_ir
    assert fast_verilog == legacy_verilog


def test_worklist_and_legacy_statistics_agree():
    """The same rewrites fire (simplified/folded/eliminated counts match)."""
    fast = build_kernel("gemm", size=4)
    fast_manager = optimization_pipeline(verify_each=False)
    fast_manager.run(fast.module)

    legacy = build_kernel("gemm", size=4)
    legacy_manager = optimization_pipeline(verify_each=False, legacy=True)
    legacy_manager.run(legacy.module)

    pairs = [
        ("cse", "legacy-cse", "ops-eliminated"),
        ("constant-propagation", "legacy-constant-propagation", "ops-folded"),
        ("strength-reduction", "legacy-strength-reduction",
         "multiplies-removed"),
    ]
    for fast_name, legacy_name, key in pairs:
        assert (fast_manager.statistic(fast_name, key)
                == legacy_manager.statistic(legacy_name, key))


class TestPassManagerReporting:
    def test_statistics_rebuilt_across_runs(self):
        """Re-running a manager reports the latest run, not an accumulation."""
        manager = optimization_pipeline(verify_each=False)
        first = build_kernel("transpose", size=8)
        manager.run(first.module)
        folded_once = manager.statistic("constant-propagation", "ops-folded")

        second = build_kernel("transpose", size=8)
        manager.run(second.module)
        folded_twice = manager.statistic("constant-propagation", "ops-folded")
        assert folded_once == folded_twice

    def test_timing_report_includes_verifier_time(self):
        artifacts = build_kernel("transpose", size=8)
        manager = optimization_pipeline(verify_each=True)
        manager.run(artifacts.module)
        report = manager.timing_report()
        assert "verify" in report
        assert any(t.verify_seconds > 0 for t in manager.timings)

    def test_timing_report_includes_analysis_cache(self):
        artifacts = build_kernel("transpose", size=8)
        manager = optimization_pipeline(verify_each=False)
        manager.run(artifacts.module)
        assert "analysis cache" in manager.timing_report()


class TestAnalysisCache:
    def test_preserved_analysis_survives_and_hits(self):
        from repro.ir import Pass

        class LoopCounter(Pass):
            name = "loop-counter"
            PRESERVES = ("loop-info",)

            def run(self, module):
                info = self.analyses.get("loop-info", module)
                self.record("loops", len(info.loops))

        artifacts = build_kernel("transpose", size=8)
        manager = PassManager(verify_each=False)
        manager.add(LoopCounter(), LoopCounter())
        manager.run(artifacts.module)
        assert manager.analysis_manager.hits == 1
        assert manager.analysis_manager.misses == 1
        assert (manager.timings[0].statistics["loops"]
                == manager.timings[1].statistics["loops"] > 0)

    def test_non_preserving_pass_invalidates(self):
        from repro.ir import Pass

        class Consumer(Pass):
            name = "consumer"

            def run(self, module):
                self.analyses.get("loop-info", module)

        artifacts = build_kernel("transpose", size=8)
        manager = PassManager(verify_each=False)
        manager.add(Consumer(), Consumer())
        manager.run(artifacts.module)
        # The first consumer does not declare PRESERVES, so the second
        # recomputes: two misses, no hits.
        assert manager.analysis_manager.misses == 2
        assert manager.analysis_manager.hits == 0


class TestPatternRewriterWorklist:
    def test_cascading_rewrites_reach_fixpoint(self):
        """A chain of foldable adds collapses without full re-walks."""
        from repro.hir.build import DesignBuilder
        from repro.ir.types import I32
        from repro.passes import ConstantPropagationPass

        builder = DesignBuilder("m")
        with builder.func("f") as f:
            chain = f.constant(1, I32)
            for _ in range(10):
                chain = f.add(chain, f.constant(1, I32), result_type=I32)
            f.return_()
        pass_ = ConstantPropagationPass()
        pass_.run(builder.module)
        assert pass_.statistics["ops-folded"] == 10

    def test_rewriter_counts_rewrites(self):

        class Never(RewritePattern):
            op_names = ("no.such.op",)

            def match_and_rewrite(self, op, rewriter):  # pragma: no cover
                return True

        artifacts = build_kernel("transpose", size=8)
        rewriter = PatternRewriter([Never()])
        assert rewriter.rewrite(artifacts.module) == 0
