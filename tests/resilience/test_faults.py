"""Fault plans: grammar, deterministic firing, counters, scoping.

The resilience layer is only trustworthy if the drills themselves are
deterministic — the same (plan spec, seed) must fire the same faults at the
same hits and flip the same bytes, or a chaos-run failure cannot be
replayed.
"""

import pytest

from repro.resilience import (
    FAULT_KINDS,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    InjectedError,
    InjectedFault,
    InjectedIOError,
    active_plan,
    bump,
    fault_point,
    install_plan,
    resilience_counters,
    reset_resilience_counters,
    set_plan,
)
from repro.resilience.faults import _reset_env_plan


@pytest.fixture(autouse=True)
def no_ambient_plan():
    """Tests control the plan explicitly; none may leak in or out."""
    previous = set_plan(None)
    try:
        yield
    finally:
        set_plan(previous)


class TestPlanParsing:
    def test_minimal_rule_defaults(self):
        plan = FaultPlan.parse("store.write:io_error")
        assert plan.rules == (FaultRule("store.write", "io_error"),)
        assert plan.rules[0].at == 1 and plan.rules[0].count == 1

    def test_at_and_count(self):
        rule = FaultPlan.parse("dse.candidate:error@3*2").rules[0]
        assert (rule.at, rule.count) == (3, 2)
        assert [rule.fires_on(hit) for hit in (1, 2, 3, 4, 5)] == \
            [False, False, True, True, False]

    def test_timeout_seconds(self):
        rule = FaultPlan.parse("dse.candidate:timeout(0.25)").rules[0]
        assert rule.kind == "timeout" and rule.seconds == 0.25

    def test_multiple_rules_with_both_separators(self):
        plan = FaultPlan.parse(
            "store.write:torn@2; store.read:corrupt, engine.compile:error")
        assert [rule.point for rule in plan.rules] == \
            ["store.write", "store.read", "engine.compile"]

    def test_spec_round_trips(self):
        text = "store.write:torn@2*3;dse.candidate:timeout(0.4)"
        plan = FaultPlan.parse(text)
        assert FaultPlan.parse(plan.spec()).rules == plan.rules

    @pytest.mark.parametrize("bad", [
        "store.write",                    # no kind
        "store.write:frobnicate",         # unknown kind
        "store.write:io_error(2)",        # seconds on a non-timeout
        "store.write:io_error@0",         # hits are 1-based
        "store.write:io_error*0",         # empty window
        ":io_error",                      # no point
    ])
    def test_bad_specs_raise_typed_error(self, bad):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse(bad)

    def test_every_kind_parses(self):
        for kind in FAULT_KINDS:
            if kind == "crash":
                continue                  # parses too; firing would SIGKILL us
            assert FaultPlan.parse(f"p:{kind}").rules[0].kind == kind


class TestFiring:
    def test_io_error_is_oserror_and_injected(self):
        with install_plan(FaultPlan.parse("p:io_error")):
            with pytest.raises(InjectedIOError) as excinfo:
                fault_point("p")
            assert isinstance(excinfo.value, OSError)
            assert isinstance(excinfo.value, InjectedFault)
            fault_point("p")              # window passed: hit 2 is clean

    def test_error_is_runtimeerror(self):
        with install_plan(FaultPlan.parse("p:error")):
            with pytest.raises(InjectedError) as excinfo:
                fault_point("p")
            assert isinstance(excinfo.value, RuntimeError)

    def test_window_fires_exactly_on_its_hits(self):
        with install_plan(FaultPlan.parse("p:error@2*2")) as plan:
            fault_point("p")              # hit 1: clean
            for _ in range(2):            # hits 2 and 3: injected
                with pytest.raises(InjectedError):
                    fault_point("p")
            fault_point("p")              # hit 4: clean again
            assert plan.injected == 2
            assert plan.hits("p") == 4

    def test_points_count_independently(self):
        with install_plan(FaultPlan.parse("a:error@2")) as plan:
            fault_point("b")
            fault_point("a")              # a's hit 1: clean
            with pytest.raises(InjectedError):
                fault_point("a")
            assert plan.hits("a") == 2 and plan.hits("b") == 1

    def test_corrupt_is_deterministic_and_changes_payload(self):
        payload = bytes(range(64))
        with install_plan(FaultPlan.parse("p:corrupt", seed=5)):
            first = fault_point("p", payload=payload)
        with install_plan(FaultPlan.parse("p:corrupt", seed=5)):
            replay = fault_point("p", payload=payload)
        assert first != payload
        assert first == replay            # same (seed, point, hit) → same flip
        assert len(first) == len(payload)

    def test_corrupt_seed_changes_the_flip(self):
        payload = bytes(1000)
        flips = set()
        for seed in range(4):
            with install_plan(FaultPlan.parse("p:corrupt", seed=seed)):
                flips.add(fault_point("p", payload=payload))
        assert len(flips) > 1

    def test_timeout_stalls_then_passes_payload_through(self):
        with install_plan(FaultPlan.parse("p:timeout(0.01)")):
            assert fault_point("p", payload=b"x") == b"x"

    def test_reset_replays_from_the_start(self):
        with install_plan(FaultPlan.parse("p:error")) as plan:
            with pytest.raises(InjectedError):
                fault_point("p")
            fault_point("p")
            plan.reset()
            with pytest.raises(InjectedError):
                fault_point("p")

    def test_no_plan_is_a_passthrough(self):
        assert fault_point("anything", payload=b"data") == b"data"
        assert fault_point("anything") is None


class TestScoping:
    def test_install_plan_restores_previous(self):
        outer = FaultPlan.parse("p:error")
        inner = FaultPlan.parse("q:error")
        set_plan(outer)
        with install_plan(inner):
            assert active_plan() is inner
        assert active_plan() is outer
        set_plan(None)

    def test_environment_plan_is_read_lazily(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "env.point:error")
        _reset_env_plan()
        try:
            plan = active_plan()
            assert plan is not None
            assert plan.rules[0].point == "env.point"
        finally:
            monkeypatch.delenv("REPRO_FAULT_PLAN")
            _reset_env_plan()

    def test_set_plan_none_disables_environment_plan(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "env.point:error")
        _reset_env_plan()
        try:
            set_plan(None)
            assert active_plan() is None
            fault_point("env.point")      # must not raise
        finally:
            monkeypatch.delenv("REPRO_FAULT_PLAN")
            _reset_env_plan()


class TestCounters:
    def test_bump_and_snapshot(self):
        before = resilience_counters().get("test.counter", 0)
        bump("test.counter")
        bump("test.counter", 2)
        assert resilience_counters()["test.counter"] == before + 3

    def test_injection_increments_the_global_counter(self):
        before = resilience_counters().get("faults.injected", 0)
        with install_plan(FaultPlan.parse("p:error")):
            with pytest.raises(InjectedError):
                fault_point("p")
        assert resilience_counters()["faults.injected"] == before + 1

    def test_reset_zeroes(self):
        bump("test.reset")
        reset_resilience_counters()
        assert resilience_counters() == {}
