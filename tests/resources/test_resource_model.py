"""Tests for the FPGA resource model."""


from repro.resources import (
    BRAM_THRESHOLD_BITS,
    ResourceModel,
    ResourceReport,
    estimate_resources,
    format_table,
)
from repro.verilog import (
    BinOp,
    Const,
    Design,
    INPUT,
    Module,
    NonBlockingAssign,
    Ref,
)


def design_with(module: Module) -> Design:
    module.add_port("clk", INPUT, 1)
    design = Design(top=module.name)
    design.add(module)
    return design


class TestReport:
    def test_addition_and_rounding(self):
        total = ResourceReport(1.4, 2.6, 0, 0) + ResourceReport(0.2, 0.2, 1, 2)
        rounded = total.rounded()
        assert rounded.lut == 2 and rounded.ff == 3
        assert rounded.as_dict() == {"LUT": 2, "FF": 3, "DSP": 1, "BRAM": 2}

    def test_str_contains_all_fields(self):
        text = str(ResourceReport(1, 2, 3, 4))
        assert "LUT=1" in text and "BRAM=4" in text

    def test_format_table(self):
        table = format_table({"a": ResourceReport(1, 2, 3, 4)}, title="T")
        assert "T" in table and "LUT" in table and "a" in table


class TestFlipFlops:
    def test_register_bits_counted(self):
        module = Module("m")
        module.add_reg("a", 8)
        module.add_reg("b", 3)
        assert estimate_resources(design_with(module)).ff == 11

    def test_register_kind_memory_counts_as_ff(self):
        module = Module("m")
        module.add_memory("regs", 32, 4, kind="registers")
        assert estimate_resources(design_with(module)).ff == 128


class TestLUTs:
    def test_adder_costs_about_one_lut_per_bit(self):
        module = Module("m")
        module.add_wire("a", 32)
        module.add_wire("b", 32)
        module.add_wire("s", 32)
        module.add_assign("s", BinOp("+", Ref("a"), Ref("b")))
        assert estimate_resources(design_with(module)).lut == 32

    def test_constant_shift_is_free(self):
        module = Module("m")
        module.add_wire("a", 32)
        module.add_wire("s", 32)
        module.add_assign("s", BinOp("<<", Ref("a"), Const(3, 6)))
        assert estimate_resources(design_with(module)).lut == 0


class TestDSPs:
    def test_32x32_multiply_uses_three_dsps(self):
        module = Module("m")
        module.add_wire("a", 32)
        module.add_wire("b", 32)
        module.add_wire("p", 32)
        module.add_assign("p", BinOp("*", Ref("a"), Ref("b")))
        assert estimate_resources(design_with(module)).dsp == 3

    def test_16x16_multiply_uses_one_dsp(self):
        module = Module("m")
        module.add_wire("a", 16)
        module.add_wire("b", 16)
        module.add_wire("p", 16)
        module.add_assign("p", BinOp("*", Ref("a"), Ref("b")))
        assert estimate_resources(design_with(module)).dsp == 1

    def test_constant_multiply_uses_no_dsp(self):
        module = Module("m")
        module.add_wire("a", 32)
        module.add_wire("p", 32)
        module.add_assign("p", BinOp("*", Ref("a"), Const(10, 32)))
        report = estimate_resources(design_with(module))
        assert report.dsp == 0
        assert report.lut > 0

    def test_constant_times_constant_is_free(self):
        module = Module("m")
        module.add_wire("p", 32)
        module.add_assign("p", BinOp("*", Const(3, 32), Const(4, 32)))
        report = estimate_resources(design_with(module))
        assert report.dsp == 0 and report.lut == 0


class TestMemories:
    def test_small_memory_is_distributed_ram(self):
        module = Module("m")
        module.add_memory("buf", 32, 16)  # 512 bits <= threshold
        report = estimate_resources(design_with(module))
        assert report.bram == 0
        assert report.lut > 0

    def test_large_memory_is_bram(self):
        module = Module("m")
        module.add_memory("buf", 32, 256)  # 8192 bits > threshold
        report = estimate_resources(design_with(module))
        assert report.bram == 1

    def test_explicit_bram_request_honoured(self):
        module = Module("m")
        module.add_memory("buf", 32, 16, kind="bram")
        assert estimate_resources(design_with(module)).bram == 1

    def test_threshold_constant_is_sane(self):
        assert BRAM_THRESHOLD_BITS < 18 * 1024

    def test_single_port_memory_is_cheaper(self):
        dual = Module("m1")
        dual.add_memory("buf", 32, 16, single_port=False)
        single = Module("m2")
        single.add_memory("buf", 32, 16, single_port=True)
        assert (estimate_resources(design_with(single)).lut
                < estimate_resources(design_with(dual)).lut)


class TestHierarchy:
    def test_instances_are_included_per_instantiation(self):
        child = Module("child")
        child.add_port("clk", INPUT, 1)
        child.add_reg("r", 8)
        top = Module("top")
        top.add_port("clk", INPUT, 1)
        top.add_instance("child", "u0", {"clk": Ref("clk")})
        top.add_instance("child", "u1", {"clk": Ref("clk")})
        design = Design(top="top")
        design.add(top)
        design.add(child)
        assert estimate_resources(design).ff == 16

    def test_external_blackbox_costs_nothing(self):
        top = Module("top")
        top.add_port("clk", INPUT, 1)
        top.add_instance("vendor_ip", "u0", {"clk": Ref("clk")})
        design = Design(top="top")
        design.add(top)
        design.add(Module("vendor_ip", external=True))
        assert estimate_resources(design).ff == 0

    def test_per_module_breakdown(self):
        child = Module("child")
        child.add_reg("r", 4)
        top = Module("top")
        top.add_reg("r", 2)
        design = Design(top="top")
        design.add(top)
        design.add(child)
        breakdown = ResourceModel(design).per_module()
        assert breakdown["child"].ff == 4 and breakdown["top"].ff == 2

    def test_clocked_statement_costs_counted(self):
        module = Module("m")
        module.add_wire("a", 16)
        module.add_reg("r", 16)
        always = module.add_always()
        always.body.append(NonBlockingAssign("r", BinOp("+", Ref("a"), Ref("r"))))
        report = estimate_resources(design_with(module))
        assert report.lut >= 16 and report.ff == 16
