"""``python -m repro serve`` / ``remote`` as real subprocesses.

The slowest serve tests: one server process per class, exercised through
the actual console entry points — URL announcement on stdout, remote verbs
against it, ``$REPRO_SERVE_URL`` resolution, and the SIGTERM contract CI's
service-smoke job relies on (exit 0 + clean-shutdown summary).
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.serve import ServeClient

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))


def spawn_server(tmp_path, *extra):
    env = dict(os.environ)
    env["REPRO_STORE_DIR"] = str(tmp_path / "store")
    env["PYTHONPATH"] = os.path.join(ROOT, "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    env["PYTHONUNBUFFERED"] = "1"
    env.pop("REPRO_FAULT_PLAN", None)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "2", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env)
    deadline = time.monotonic() + 30
    url = None
    while time.monotonic() < deadline and url is None:
        line = process.stdout.readline()
        if line.startswith("serving on "):
            url = line.split("serving on ", 1)[1].strip()
        elif process.poll() is not None:
            break
    if url is None:
        process.kill()
        pytest.fail(f"serve never announced a URL; stderr: "
                    f"{process.stderr.read()}")
    ServeClient(url).wait_ready(timeout=15)
    return process, url, env


def run_remote(url, env, *argv):
    env = dict(env, REPRO_SERVE_URL=url)
    return subprocess.run(
        [sys.executable, "-m", "repro", "remote", *argv],
        capture_output=True, text=True, env=env, timeout=120)


@pytest.mark.slow
class TestServeProcess:
    @pytest.fixture(scope="class")
    def service(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("serve-cli")
        process, url, env = spawn_server(tmp_path)
        yield process, url, env
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)

    def test_remote_build_writes_verilog(self, service, tmp_path):
        _, url, env = service
        out = tmp_path / "gemm.v"
        result = run_remote(url, env, "build", "gemm", "-p", "size=4",
                            "-o", str(out))
        assert result.returncode == 0, result.stderr
        assert "module" in out.read_text()
        assert "built" in result.stderr or "store-hit" in result.stderr

    def test_remote_simulate_reports_cycles(self, service):
        _, url, env = service
        result = run_remote(url, env, "simulate", "gemm", "-p", "size=4",
                            "--seed", "2")
        assert result.returncode == 0, result.stderr
        assert "cycles=" in result.stdout and " ok" in result.stdout

    def test_remote_sweep_prints_lanes(self, service):
        _, url, env = service
        result = run_remote(url, env, "sweep", "matvec", "-p", "size=4",
                            "--seeds", "3")
        assert result.returncode == 0, result.stderr
        assert result.stdout.count("lane") == 3

    def test_remote_stats_is_json(self, service):
        _, url, env = service
        result = run_remote(url, env, "stats")
        assert result.returncode == 0, result.stderr
        stats = json.loads(result.stdout)
        assert stats["counters"]["serve.requests"] >= 3

    def test_remote_unknown_kernel_exits_nonzero(self, service):
        _, url, env = service
        result = run_remote(url, env, "build", "no-such-kernel")
        assert result.returncode == 1
        assert "UnknownKernelError" in result.stderr

    def test_remote_without_url_is_a_clean_error(self, service):
        _, _, env = service
        env = dict(env)
        env.pop("REPRO_SERVE_URL", None)
        result = subprocess.run(
            [sys.executable, "-m", "repro", "remote", "stats"],
            capture_output=True, text=True, env=env, timeout=60)
        assert result.returncode == 2      # typed CLI error, no traceback
        assert "REPRO_SERVE_URL" in result.stderr
        assert "Traceback" not in result.stderr

    def test_sigterm_shuts_down_cleanly(self, service):
        # Last in the class: ends the shared server on purpose.
        process, _, _ = service
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=30) == 0
        assert "shut down cleanly" in process.stderr.read()
