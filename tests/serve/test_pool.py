"""The coalescing pool: single flight, sharding, the supervision ladder.

These tests drive the pool with plain callables (no Flow, no HTTP), so each
scheduling behaviour — coalescing, deterministic shard choice, retry,
pool→serial degradation, timeout — is pinned in isolation.
"""

import threading
import time

import pytest

from repro.resilience import (
    FaultPlan,
    InjectedIOError,
    WorkerError,
    install_plan,
)
from repro.serve.pool import CoalescingPool

#: sha256-shaped keys the pool shards on (any hex string works).
KEY_A = "a" * 64
KEY_B = "b" * 64


@pytest.fixture
def pool():
    with CoalescingPool(workers=2) as pool:
        yield pool


class TestSingleFlight:
    def test_one_execution_for_concurrent_identical_keys(self, pool):
        calls = []
        started = threading.Event()

        def build():
            started.set()
            calls.append(1)
            time.sleep(0.3)         # hold the entry in flight
            return "artifact"

        outcomes = [None] * 6

        def hit(index):
            outcomes[index] = pool.run(KEY_A, build)

        threads = [threading.Thread(target=hit, args=(index,))
                   for index in range(6)]
        threads[0].start()
        started.wait(timeout=5)     # the winner is executing; pile on
        for thread in threads[1:]:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(calls) == 1
        coalesced = [outcome.coalesced for outcome in outcomes]
        assert coalesced.count(False) == 1 and coalesced.count(True) == 5
        assert {outcome.unwrap() for outcome in outcomes} == {"artifact"}
        # the result object itself is shared, not copied
        assert len({id(outcome.result) for outcome in outcomes}) == 1

    def test_sequential_same_key_runs_again(self, pool):
        calls = []
        pool.run(KEY_A, lambda: calls.append(1))
        pool.run(KEY_A, lambda: calls.append(1))
        assert len(calls) == 2      # no entry in flight the second time


class TestSharding:
    def test_shard_choice_is_deterministic(self, pool):
        assert pool.shard_of(KEY_A) == int(KEY_A, 16) % 2
        assert pool.shard_of(KEY_A) == pool.shard_of(KEY_A)
        assert pool.shard_of(KEY_A) != pool.shard_of(KEY_B)

    def test_outcome_reports_the_executing_shard(self, pool):
        outcome = pool.run(KEY_A, lambda: "x")
        assert outcome.shard == pool.shard_of(KEY_A)

    def test_depths_covers_every_shard(self, pool):
        depths = pool.depths()
        assert [entry["shard"] for entry in depths] == [0, 1]
        assert all(entry["alive"] for entry in depths)
        pool.run(KEY_A, lambda: None)
        pool.run(KEY_B, lambda: None)
        assert sum(entry["dispatched"] for entry in pool.depths()) == 2


class TestSupervision:
    def test_injected_fault_is_retried_in_place(self):
        counts = []
        with CoalescingPool(workers=1, retries=1,
                            counter=counts.append) as pool:
            attempts = []

            def flaky():
                attempts.append(1)
                if len(attempts) == 1:
                    raise InjectedIOError("first attempt dies")
                return "recovered"

            assert pool.run(KEY_A, flaky).unwrap() == "recovered"
            assert len(attempts) == 2
        assert counts.count("serve.retries") == 1

    def test_exhausted_retries_raise_typed_worker_error(self):
        with CoalescingPool(workers=1, retries=1) as pool:
            def doomed():
                raise InjectedIOError("always dies")

            outcome = pool.run(KEY_A, doomed)
            with pytest.raises(WorkerError) as excinfo:
                outcome.unwrap()
            assert "2 attempt(s)" in str(excinfo.value)

    def test_real_exceptions_pass_through_untyped(self, pool):
        def broken():
            raise KeyError("unknown kernel")

        with pytest.raises(KeyError):
            pool.run(KEY_A, broken).unwrap()

    def test_timeout_resolves_with_typed_error(self):
        with CoalescingPool(workers=1) as pool:
            outcome = pool.run(KEY_A, lambda: time.sleep(30),
                               timeout=0.2)
            with pytest.raises(WorkerError) as excinfo:
                outcome.unwrap()
            assert "timed out" in str(excinfo.value)


class TestDegradation:
    def test_shard_crash_degrades_to_serial_with_same_result(self):
        counts = []
        with CoalescingPool(workers=2, counter=counts.append) as pool:
            with install_plan(FaultPlan.parse("serve.shard:error")):
                outcome = pool.run(KEY_A, lambda: "rescued")
            assert outcome.unwrap() == "rescued"
            assert outcome.serial
            # the crashed shard is reported dead, the other stays alive
            dead = [entry for entry in pool.depths()
                    if not entry["alive"]]
            assert len(dead) == 1
            assert dead[0]["shard"] == pool.shard_of(KEY_A)
            # later keys on the broken shard run serially up front
            outcome2 = pool.run(KEY_A, lambda: "still served")
            assert outcome2.unwrap() == "still served"
            assert outcome2.serial
        assert counts.count("serve.shard_crashes") == 1
        assert counts.count("serve.pool_degraded") == 1
        assert counts.count("serve.serial") == 1

    def test_healthy_shard_keeps_working_after_a_crash(self):
        with CoalescingPool(workers=2) as pool:
            with install_plan(FaultPlan.parse("serve.shard:error")):
                pool.run(KEY_A, lambda: "rescued")
            other = KEY_B if pool.shard_of(KEY_B) != pool.shard_of(KEY_A) \
                else KEY_A
            if pool.shard_of(other) != pool.shard_of(KEY_A):
                outcome = pool.run(other, lambda: "fine")
                assert outcome.unwrap() == "fine"
                assert not outcome.serial


class TestLifecycle:
    def test_stop_is_idempotent(self):
        pool = CoalescingPool(workers=2)
        pool.run(KEY_A, lambda: "x")
        pool.stop()
        pool.stop()

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            CoalescingPool(workers=0)
