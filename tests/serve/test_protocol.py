"""The wire protocol: canonical requests, keys, envelopes, validation.

The request key is what the whole service hangs off — single-flight,
sharding, and the store blob all use it — so its invariances (parameter
order, defaulted fields, protocol version) are pinned here as facts.
"""

import json

import pytest

from repro.serve.protocol import (
    PROTOCOL_VERSION,
    PROVENANCES,
    VERBS,
    ServeError,
    ServeRequest,
    ServeResponse,
    canonical_payload,
    payload_key,
    validation_errors,
)


class TestCanonicalRequest:
    def test_param_order_is_irrelevant(self):
        left = ServeRequest.make("build", "gemm", {"size": 8, "depth": 2})
        right = ServeRequest.make("build", "gemm", {"depth": 2, "size": 8})
        assert left == right
        assert left.key() == right.key()

    def test_defaulted_fields_key_like_explicit_defaults(self):
        implicit = ServeRequest.make("simulate", "gemm", {"size": 4})
        explicit = ServeRequest.from_payload(
            {"verb": "simulate", "target": "gemm", "params": {"size": 4},
             "seed": 0})
        assert implicit.key() == explicit.key()

    def test_different_requests_have_different_keys(self):
        base = ServeRequest.make("build", "gemm", {"size": 4})
        assert base.key() != ServeRequest.make(
            "build", "gemm", {"size": 8}).key()
        assert base.key() != ServeRequest.make(
            "simulate", "gemm", {"size": 4}).key()
        assert base.key() != ServeRequest.make(
            "build", "gemm", {"size": 4}, pipeline="none").key()
        assert base.key() != ServeRequest.make(
            "simulate", "gemm", {"size": 4}, seed=1).key()

    def test_key_is_sha256_hex(self):
        key = ServeRequest.make("build", "gemm").key()
        assert len(key) == 64
        int(key, 16)            # parses as hex

    def test_protocol_version_is_folded_into_the_key(self):
        request = ServeRequest.make("build", "gemm")
        canonical = json.loads(request.canonical())
        assert canonical["v"] == PROTOCOL_VERSION
        mutated = dict(canonical, v=PROTOCOL_VERSION + 1)
        assert payload_key(json.dumps(
            mutated, sort_keys=True, separators=(",", ":"))) != request.key()

    def test_request_round_trips_through_its_payload(self):
        request = ServeRequest.make("sweep", "matvec", {"size": 4}, seeds=3,
                                    engine="interpreted")
        assert ServeRequest.from_payload(request.to_payload()) == request


class TestRequestValidation:
    @pytest.mark.parametrize("body,fragment", [
        ("not an object", "JSON object"),
        ({"verb": "frobnicate", "target": "gemm"}, "unknown verb"),
        ({"verb": "build"}, "target"),
        ({"verb": "build", "target": ""}, "target"),
        ({"verb": "build", "target": "gemm", "params": [1]}, "params"),
        ({"verb": "build", "target": "gemm", "params": {"size": "big"}},
         "integer"),
        ({"verb": "build", "target": "gemm", "params": {"size": True}},
         "integer"),
        ({"verb": "simulate", "target": "gemm", "seed": "zero"}, "seed"),
        ({"verb": "sweep", "target": "gemm", "seeds": 0}, "seeds"),
        ({"verb": "build", "target": "gemm", "pipeline": 3}, "pipeline"),
        ({"verb": "build", "target": "gemm", "bogus": 1}, "unknown"),
    ])
    def test_malformed_bodies_raise_typed_errors(self, body, fragment):
        with pytest.raises(ServeError) as excinfo:
            ServeRequest.from_payload(body)
        assert fragment in str(excinfo.value)
        assert validation_errors(body) != []

    def test_every_verb_parses(self):
        for verb in VERBS:
            parsed = ServeRequest.from_payload(
                {"verb": verb, "target": "gemm"})
            assert parsed.verb == verb
        assert validation_errors({"verb": "build", "target": "gemm"}) == []


class TestCanonicalPayload:
    def test_encoding_is_sorted_and_compact(self):
        text = canonical_payload({"b": 2, "a": {"y": 1, "x": 0}})
        assert text == '{"a":{"x":0,"y":1},"b":2}'

    def test_byte_identity_is_string_equality(self):
        one = canonical_payload({"cycles": 48, "ok": True})
        two = canonical_payload({"ok": True, "cycles": 48})
        assert one == two


class TestResponseEnvelope:
    def test_round_trip(self):
        response = ServeResponse(
            ok=True, verb="build", key="ab" * 32, provenance="coalesced",
            shard=2, fingerprint="f" * 12, seconds=0.25,
            payload=canonical_payload({"verilog": "module m; endmodule"}),
            meta={"serial": True})
        parsed = ServeResponse.from_payload(response.to_payload())
        assert parsed == response
        assert parsed.result()["verilog"].startswith("module")

    def test_provenances_are_the_documented_set(self):
        assert PROVENANCES == ("built", "coalesced", "store-hit")

    def test_error_response_raises_on_result(self):
        response = ServeResponse(
            ok=False, verb="build", key="", error={
                "type": "UnknownKernelError", "message": "unknown kernel"})
        parsed = ServeResponse.from_payload(response.to_payload())
        with pytest.raises(ServeError) as excinfo:
            parsed.result()
        assert "UnknownKernelError" in str(excinfo.value)

    def test_missing_fields_are_rejected(self):
        with pytest.raises(ServeError):
            ServeResponse.from_payload({"ok": True})
        with pytest.raises(ServeError):
            ServeResponse.from_payload([])
