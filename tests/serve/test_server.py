"""The serving tier end to end, in process: HTTP round trips, the three
provenance tiers, store concurrency under the service, and chaos plans.

Every test spins a real :class:`ServeServer` (ephemeral port) and talks to
it through the real :class:`ServeClient` — the same wire path as
``python -m repro remote`` — against a per-test store directory.
"""

import threading

import pytest

from repro.flow import FlowConfig
from repro.resilience import FaultPlan, install_plan
from repro.serve import ServeClient, ServeRequest, ServeServer
from repro.store import store_counters

KERNEL = ("gemm", {"size": 4})


@pytest.fixture
def server(tmp_path):
    config = FlowConfig.from_env().with_(store_dir=str(tmp_path / "store"))
    with ServeServer(config=config, workers=2) as server:
        yield server


@pytest.fixture
def client(server):
    return ServeClient(server.url)


class TestEndpoints:
    def test_health_and_stats(self, client, server):
        assert client.health() == {"ok": True, "workers": 2}
        stats = client.stats()
        assert stats["ok"] and stats["workers"] == 2
        assert set(stats["counters"]) >= {
            "serve.requests", "serve.builds", "serve.coalesced",
            "serve.store_hits", "serve.errors"}
        assert [shard["shard"] for shard in stats["shards"]] == [0, 1]
        assert stats["store"]["root"] == server.store.root

    def test_unknown_route_is_a_typed_404(self, client):
        # HTTP errors still carry a JSON body the client surfaces verbatim.
        body = client._round_trip("/v1/nonsense")
        assert body["ok"] is False
        assert body["error"]["type"] == "NotFound"


class TestVerbs:
    def test_build_round_trip(self, client):
        response = client.build(*KERNEL)
        assert response.ok and response.provenance == "built"
        assert response.shard in (0, 1)
        assert len(response.fingerprint) == 16      # module_fingerprint hex
        int(response.fingerprint, 16)
        result = response.result()
        assert "module" in result["verilog"]
        assert result["resources"]["lut"] > 0

    def test_simulate_round_trip(self, client):
        result = client.simulate("matvec", {"size": 4}, seed=2).result()
        assert result["ok"] is True and result["cycles"] > 0
        assert result["seed"] == 2
        assert result["outputs"]            # writable interfaces, as lists

    def test_sweep_round_trip(self, client):
        result = client.sweep("matvec", {"size": 4}, seeds=3).result()
        assert len(result["lanes"]) == 3
        assert result["mismatches"] == 0
        assert all(lane["ok"] for lane in result["lanes"])

    def test_compose_round_trip(self, client):
        result = client.compose("sorted_scan", seed=1).result()
        assert result["ok"] is True
        assert result["nodes"] >= 2 and result["edges"] >= 1


class TestProvenanceTiers:
    def test_second_request_is_a_store_hit_with_identical_bytes(
            self, client, server):
        first = client.build(*KERNEL)
        second = client.build(*KERNEL)
        assert first.provenance == "built"
        assert second.provenance == "store-hit"
        assert second.payload == first.payload
        assert server.counter("serve.builds") == 1
        assert server.counter("serve.store_hits") == 1
        assert server.counter("serve.store_writes") == 1

    def test_concurrent_identical_requests_coalesce(self, client, server):
        # Stall the one real execution so every concurrent request piles
        # onto the in-flight entry instead of racing it to the store.
        responses = [None] * 8

        def hit(index):
            responses[index] = client.build(*KERNEL)

        with install_plan(FaultPlan.parse("serve.execute:timeout(0.8)")):
            threads = [threading.Thread(target=hit, args=(index,))
                       for index in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        assert all(response.ok for response in responses)
        provenances = sorted(r.provenance for r in responses)
        assert provenances.count("built") == 1
        assert provenances.count("coalesced") == 7
        assert len({r.payload for r in responses}) == 1
        assert server.counter("serve.builds") == 1
        assert server.counter("serve.coalesced") == 7

    def test_one_store_publish_per_key_under_concurrency(
            self, client, server):
        before = store_counters()
        responses = [None] * 6

        def hit(index):
            responses[index] = client.build(*KERNEL)

        with install_plan(FaultPlan.parse("serve.execute:timeout(0.8)")):
            threads = [threading.Thread(target=hit, args=(index,))
                       for index in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        after = store_counters()
        assert all(response.ok for response in responses)
        # One serve blob + the Flow's own stage blobs — published once
        # each, never re-raced — and zero failed/starved writes.
        assert server.counter("serve.store_writes") == 1
        assert after["write_failures"] == before["write_failures"]


class TestErrors:
    def test_unknown_kernel_is_a_typed_400(self, client):
        response = client.build("no-such-kernel")
        assert not response.ok
        assert response.error["type"] == "UnknownKernelError"
        assert "no-such-kernel" in response.error["message"]

    def test_bad_request_body_is_a_typed_400(self, client, server):
        response = client._round_trip(
            "/v1/request", {"verb": "frobnicate", "target": "x"})
        assert response["ok"] is False
        assert response["error"]["type"] == "ServeError"
        assert server.counter("serve.errors") == 1

    def test_bad_kernel_params_are_a_typed_error(self, client):
        response = client.build("gemm", {"bogus_param": 3})
        assert not response.ok
        assert response.error["type"] == "TypeError"

    def test_errors_are_not_memoized(self, client, server):
        assert not client.build("no-such-kernel").ok
        good = client.build(*KERNEL)
        assert good.ok and good.provenance == "built"


class TestChaos:
    def test_shard_crash_degrades_with_identical_payload(self, tmp_path):
        config = FlowConfig.from_env().with_(
            store_dir=str(tmp_path / "healthy"))
        with ServeServer(config=config, workers=2) as healthy:
            reference = ServeClient(healthy.url).build(*KERNEL)
        assert reference.ok

        config = FlowConfig.from_env().with_(
            store_dir=str(tmp_path / "chaos"))
        with ServeServer(config=config, workers=2) as server:
            client = ServeClient(server.url)
            with install_plan(FaultPlan.parse("serve.shard:error")):
                response = client.build(*KERNEL)
            assert response.ok
            assert response.meta.get("serial") is True
            assert response.payload == reference.payload
            assert server.counter("serve.pool_degraded") == 1
            assert server.counter("serve.shard_crashes") == 1
            # the service keeps answering on the remaining shard
            follow_up = client.simulate("matvec", {"size": 4})
            assert follow_up.ok

    def test_faulted_request_is_typed_error_xor_identical_bytes(
            self, tmp_path):
        """The PR 7 recovery contract at the service boundary: under any
        fault plan a request either fails with a typed error or returns
        exactly the fault-free bytes — never a third thing."""
        config = FlowConfig.from_env().with_(
            store_dir=str(tmp_path / "ref"))
        with ServeServer(config=config, workers=2) as ref_server:
            reference = ServeClient(ref_server.url).build(*KERNEL)

        plans = ["serve.request:error", "serve.execute:io_error*4",
                 "serve.shard:error", "serve.execute:timeout(0.1)",
                 "store.write:io_error"]
        for index, spec in enumerate(plans):
            config = FlowConfig.from_env().with_(
                store_dir=str(tmp_path / f"plan{index}"))
            with ServeServer(config=config, workers=2) as server:
                client = ServeClient(server.url)
                with install_plan(FaultPlan.parse(spec)):
                    response = client.build(*KERNEL)
                if response.ok:
                    assert response.payload == reference.payload, spec
                else:
                    assert response.error is not None, spec
                    assert response.error["type"] in (
                        "InjectedError", "WorkerError"), spec


class TestRequestPipelineDirect:
    """handle_request without HTTP: the pipeline is usable embedded too."""

    def test_counters_track_the_tiers(self, server):
        body = ServeRequest.make(*(("build",) + KERNEL)).to_payload()
        first = server.handle_request(body)
        second = server.handle_request(body)
        assert first.ok and second.ok
        assert (first.provenance, second.provenance) == ("built",
                                                         "store-hit")
        counters = server.stats_payload()["counters"]
        assert counters["serve.requests"] == 2
        assert counters["serve.builds"] == 1
        assert counters["serve.store_hits"] == 1

    def test_store_disabled_still_serves(self, tmp_path):
        config = FlowConfig.from_env().with_(store_dir="")
        with ServeServer(config=config, workers=1) as server:
            assert server.store is None
            body = ServeRequest.make(*(("build",) + KERNEL)).to_payload()
            first = server.handle_request(body)
            second = server.handle_request(body)
            assert first.ok and second.ok
            # no store tier: every sequential request rebuilds
            assert (first.provenance, second.provenance) == ("built",
                                                             "built")
            assert first.payload == second.payload
