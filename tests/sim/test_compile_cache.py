"""Tests for the simulation engine's bounded compile cache (LRU eviction)."""


from repro.kernels import build_kernel
from repro.sim.engine import clear_compile_cache, compile_cache_size
from repro.sim.engine.cache import compiled_artifacts
from repro.verilog import generate_verilog


def _design(size):
    artifacts = build_kernel("transpose", size=size)
    return generate_verilog(artifacts.module, top=artifacts.top).design


class TestCompileCacheEviction:
    def test_cache_hit_reuses_artifacts(self):
        clear_compile_cache()
        design = _design(4)
        first = compiled_artifacts(design, None, {}, vector=False)
        second = compiled_artifacts(design, None, {}, vector=False)
        assert first is second
        assert compile_cache_size() == 1

    def test_cache_is_bounded_lru(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_CACHE_SIZE", "2")
        clear_compile_cache()
        designs = [_design(size) for size in (2, 3, 4)]
        for design in designs:
            compiled_artifacts(design, None, {}, vector=False)
        assert compile_cache_size() == 2
        # The oldest design was evicted; recompiling it is a fresh entry
        # (and evicts the next-oldest in turn).
        oldest = compiled_artifacts(designs[0], None, {}, vector=False)
        assert oldest is not None
        assert compile_cache_size() == 2
        clear_compile_cache()

    def test_recently_used_entry_survives_eviction(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_CACHE_SIZE", "2")
        clear_compile_cache()
        a, b, c = (_design(size) for size in (2, 3, 4))
        first_a = compiled_artifacts(a, None, {}, vector=False)
        compiled_artifacts(b, None, {}, vector=False)
        # Touch ``a`` so ``b`` is the least recently used when ``c`` lands.
        compiled_artifacts(a, None, {}, vector=False)
        compiled_artifacts(c, None, {}, vector=False)
        assert compiled_artifacts(a, None, {}, vector=False) is first_a
        clear_compile_cache()

    def test_zero_capacity_disables_caching(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_CACHE_SIZE", "0")
        clear_compile_cache()
        design = _design(4)
        first = compiled_artifacts(design, None, {}, vector=False)
        second = compiled_artifacts(design, None, {}, vector=False)
        assert first is not second
        assert compile_cache_size() == 0

    def test_simulation_still_correct_after_eviction(self, monkeypatch):
        import numpy as np

        monkeypatch.setenv("REPRO_SIM_CACHE_SIZE", "1")
        clear_compile_cache()
        artifacts = build_kernel("transpose", size=4)
        run, inputs = artifacts.simulate(seed=0, engine="compiled")
        # A second, different design evicts the first's artifacts...
        other = build_kernel("stencil_1d", size=8)
        other.simulate(seed=0, engine="compiled")
        # ...and the first still recompiles and simulates correctly.
        run2, inputs2 = artifacts.simulate(seed=1, engine="compiled")
        expected = artifacts.reference(inputs2)
        for name, reference in expected.items():
            assert np.array_equal(run2.memory_array(name),
                                  np.asarray(reference))
        clear_compile_cache()
