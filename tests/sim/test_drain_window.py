"""The shared drain-window arithmetic and the typed timeout contract.

Every runner — scalar testbench, batched lanes, fused vector run — closes
its drain window through :func:`repro.sim.engine.window.last_drain_cycle`;
these tests pin the arithmetic itself (a write scheduled on the *last* drain
cycle must still land) and the companion contract that a run which never
asserts ``done`` raises :class:`SimulationTimeout` naming the undone lanes
instead of returning zero-filled results.
"""

import numpy as np
import pytest

from repro.ir.types import I32
from repro.hir.types import MemrefType
from repro.sim import SimulationTimeout, last_drain_cycle
from repro.sim.engine.batch import run_design_batch_impl
from repro.sim.testbench import run_design_impl
from repro.verilog.ast import (
    INPUT,
    OUTPUT,
    BinOp,
    Const,
    Design,
    Module,
    NonBlockingAssign,
    Ref,
)

#: Engines that accept arbitrary designs through run_design_impl.
ENGINES = ["interpreted", "compiled", "differential", "vector"]


def writer_design(done_at=10, data_done=False):
    """A counter that writes ``count + 100`` to ``out[count]`` every cycle.

    ``done`` rises when the counter reaches ``done_at`` — or, with
    ``data_done=True``, when it reaches the value read from ``a[0]``, so a
    batched run's lanes can finish at different cycles (or never).
    """
    module = Module("drain")
    module.add_port("clk", INPUT, 1)
    module.add_port("start", INPUT, 1)
    module.add_port("done", OUTPUT, 1)
    module.add_port("out_addr", OUTPUT, 8)
    module.add_port("out_wr_en", OUTPUT, 1)
    module.add_port("out_wr_data", OUTPUT, 32)
    module.add_reg("count", 16)
    if data_done:
        module.add_port("a_addr", OUTPUT, 2)
        module.add_port("a_rd_en", OUTPUT, 1)
        module.add_port("a_rd_data", INPUT, 32)
        module.add_assign("a_addr", Const(0, 2))
        module.add_assign("a_rd_en", Const(1, 1))
        # count >= a[0], masked with count >= 1 so the zero-initialized
        # rd_data input cannot finish the run on cycle 0.
        module.add_assign("done", BinOp(
            "&&",
            BinOp(">=", Ref("count"), Ref("a_rd_data")),
            BinOp(">=", Ref("count"), Const(1, 16))))
    else:
        module.add_assign("done",
                          BinOp(">=", Ref("count"), Const(done_at, 16)))
    module.add_assign("out_addr", Ref("count"))
    module.add_assign("out_wr_en", Const(1, 1))
    module.add_assign("out_wr_data", BinOp("+", Ref("count"), Const(100, 32)))
    always = module.add_always()
    always.body.append(
        NonBlockingAssign("count", BinOp("+", Ref("count"), Const(1, 16))))
    design = Design(top="drain")
    design.add(module)
    return design


OUT = MemrefType((32,), I32, port="w")
A = MemrefType((4,), I32, port="r")


class TestLastDrainCycle:
    def test_ints(self):
        assert last_drain_cycle(10, 4) == 14
        assert last_drain_cycle(0, 0) == 0

    def test_numpy_elementwise(self):
        done = np.array([3, 7])
        assert list(last_drain_cycle(done, 4)) == [7, 11]


class TestDrainWindow:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_write_on_last_drain_cycle_lands(self, engine):
        """The write sampled on cycle ``done + drain_cycles`` must commit —
        an off-by-one in the window arithmetic drops exactly that write."""
        done_at, drain = 10, 8
        run = run_design_impl(writer_design(done_at=done_at),
                              memories={"out": (OUT, None)},
                              max_cycles=1000, drain_cycles=drain,
                              engine=engine)
        assert run.cycles == done_at + 1
        last = last_drain_cycle(done_at, drain)
        data = run.memories["out"].data
        for cycle in range(last + 1):
            assert data[cycle] == 100 + cycle, (engine, cycle)
        # ...and nothing after the window closed.
        assert data[last + 1] == 0, engine

    def test_batched_lanes_drain_independently(self):
        """Each batched lane's window closes at its own done cycle."""
        design = writer_design(data_done=True)
        lanes = [[5, 0, 0, 0], [9, 0, 0, 0]]
        batch = run_design_batch_impl(
            design,
            memories={"a": (A, lanes),
                      "out": (OUT, [np.zeros(32, int), np.zeros(32, int)])},
            max_cycles=1000, drain_cycles=4)
        for lane, stimulus in enumerate(lanes):
            single = run_design_impl(
                design,
                memories={"a": (A, stimulus), "out": (OUT, None)},
                max_cycles=1000, drain_cycles=4, engine="compiled")
            assert int(batch.cycles[lane]) == single.cycles
            assert np.array_equal(batch.memory_array("out", lane),
                                  single.memory_array("out"))


class TestSimulationTimeout:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_never_done_raises_typed_timeout(self, engine):
        design = writer_design(data_done=True)
        with pytest.raises(SimulationTimeout) as excinfo:
            run_design_impl(design,
                            memories={"a": (A, [10_000, 0, 0, 0]),
                                      "out": (OUT, None)},
                            max_cycles=50, drain_cycles=4, engine=engine)
        error = excinfo.value
        assert error.undone_lanes == (0,)
        assert error.max_cycles == 50
        assert "never asserted done" in str(error)

    def test_batched_timeout_names_the_undone_lanes(self):
        """Lane 1 never finishes: the run must raise (not return lane 1 as
        zero-filled results) and the error must name exactly that lane."""
        design = writer_design(data_done=True)
        with pytest.raises(SimulationTimeout) as excinfo:
            run_design_batch_impl(
                design,
                memories={"a": (A, [[5, 0, 0, 0], [10_000, 0, 0, 0]]),
                          "out": (OUT, [np.zeros(32, int), np.zeros(32, int)])},
                max_cycles=50, drain_cycles=4)
        error = excinfo.value
        assert error.undone_lanes == (1,)
        assert "lanes [1]" in str(error)

    def test_batched_timeout_all_lanes(self):
        design = writer_design(data_done=True)
        with pytest.raises(SimulationTimeout) as excinfo:
            run_design_batch_impl(
                design,
                memories={"a": (A, [[10_000, 0, 0, 0], [10_000, 0, 0, 0]]),
                          "out": (OUT, [np.zeros(32, int), np.zeros(32, int)])},
                max_cycles=50, drain_cycles=4)
        assert excinfo.value.undone_lanes == (0, 1)

    def test_timeout_is_a_simulation_error(self):
        from repro.ir.errors import SimulationError
        assert issubclass(SimulationTimeout, SimulationError)
