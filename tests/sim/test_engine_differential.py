"""Differential tests: compiled and batched engines vs the interpreter.

The compiled engine must be a bit-exact, cycle-exact drop-in for the
interpreted reference on every kernel; the ``differential`` engine enforces
that trace-by-trace while the full testbench protocol runs.  The batched
engine must reproduce each lane's single-run result exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import SimulationError
from repro.kernels import build_kernel
from repro.sim import (
    CompiledSimulator,
    DivergenceError,
    Simulator,
    available_engines,
    create_simulator,
    get_default_engine,
    run_design,
    set_default_engine,
)
from repro.verilog import (
    BinOp,
    Const,
    Design,
    If,
    INPUT,
    Module,
    NonBlockingAssign,
    OUTPUT,
    Ref,
)


def counter_design(width=8):
    """Enable-gated counter (same design as in test_simulator.py)."""
    module = Module("counter")
    module.add_port("clk", INPUT, 1)
    module.add_port("rst", INPUT, 1)
    module.add_port("enable", INPUT, 1)
    module.add_port("value", OUTPUT, width)
    module.add_reg("count", width)
    module.add_assign("value", Ref("count"))
    always = module.add_always()
    always.body.append(
        If(Ref("enable"),
           [NonBlockingAssign("count", BinOp("+", Ref("count"), Const(1, width)))])
    )
    design = Design(top="counter")
    design.add(module)
    return design

SMALL_PARAMS = {
    "transpose": {"size": 8},
    "stencil_1d": {"size": 32},
    "histogram": {"pixels": 64, "bins": 32},
    "gemm": {"size": 4},
    "convolution": {"size": 8},
    "fifo": {"depth": 64},
}


def differential_run(name, params, seed=1):
    artifacts = build_kernel(name, **params)
    run, inputs = artifacts.simulate(seed=seed, engine="differential")
    return artifacts, run, inputs


class TestEngineSelection:
    def test_available_engines(self):
        assert {"interpreted", "compiled", "differential"} <= \
            set(available_engines())

    def test_create_simulator_types(self):
        design = counter_design()
        assert isinstance(create_simulator(design), Simulator)
        assert isinstance(create_simulator(design, engine="compiled"),
                          CompiledSimulator)

    def test_unknown_engine_rejected(self):
        with pytest.raises(SimulationError, match="unknown simulation engine"):
            create_simulator(counter_design(), engine="verilator")
        with pytest.raises(SimulationError, match="unknown simulation engine"):
            set_default_engine("verilator")

    def test_default_engine_round_trip(self):
        previous = set_default_engine("compiled")
        try:
            assert get_default_engine() == "compiled"
            assert isinstance(create_simulator(counter_design()),
                              CompiledSimulator)
        finally:
            set_default_engine(previous)


class TestCompiledUnit:
    """The compiled engine on hand-built designs (mirrors the interpreter
    tests in test_simulator.py)."""

    def test_counter_counts_and_wraps(self):
        sim = CompiledSimulator(counter_design(width=4))
        sim.set("enable", 1)
        sim.step(20)
        assert sim.get("value") == 4  # 20 mod 16

    def test_reset_restores_initial_state(self):
        sim = CompiledSimulator(counter_design())
        sim.set("enable", 1)
        sim.step(3)
        sim.reset()
        assert sim.get("count") == 0
        assert sim.cycle == 0

    def test_unknown_signal_and_input_errors(self):
        sim = CompiledSimulator(counter_design())
        with pytest.raises(SimulationError):
            sim.get("missing")
        with pytest.raises(SimulationError):
            sim.set("value", 1)

    def test_structural_errors_detected_at_compile(self):
        module = Module("loop")
        module.add_port("clk", INPUT, 1)
        module.add_wire("a", 1)
        module.add_wire("b", 1)
        module.add_assign("a", Ref("b"))
        module.add_assign("b", Ref("a"))
        design = Design(top="loop")
        design.add(module)
        with pytest.raises(SimulationError, match="combinational loop"):
            CompiledSimulator(design)

    def test_event_scheduler_skips_quiet_logic(self):
        """With inputs held constant, settled logic must not re-evaluate."""
        sim = CompiledSimulator(counter_design())
        sim.set("enable", 0)
        sim.step(50)
        total = (sim.stats["event_assign_evals"]
                 + sim.stats["full_assign_evals"])
        # The interpreter would evaluate every assignment every eval_comb
        # call (~2 assigns x 51 calls); the scheduler does far less.
        assert total < 2 * 51

    def test_idle_design_costs_nothing_per_cycle(self):
        sim = CompiledSimulator(counter_design())
        sim.set("enable", 0)
        sim.step(5)
        calls_before = sim.stats["comb_calls"]
        sim.step(10)
        assert sim.stats["comb_calls"] == calls_before  # nothing was dirty


class TestDifferentialKernels:
    @pytest.mark.parametrize("name", sorted(SMALL_PARAMS))
    def test_kernel_traces_agree(self, name):
        """Compiled and interpreted traces are identical on every kernel,
        every cycle, and the result matches the numpy reference."""
        artifacts, run, inputs = differential_run(name, SMALL_PARAMS[name])
        assert run.done
        expected = artifacts.reference(inputs)
        for output_name, reference in expected.items():
            produced = run.memory_array(output_name)
            reference = np.asarray(reference)
            if name == "stencil_1d":
                produced, reference = produced[1:], reference[1:]
            assert np.array_equal(produced, reference)

    @pytest.mark.parametrize("name", sorted(SMALL_PARAMS))
    def test_cycle_counts_identical(self, name):
        artifacts = build_kernel(name, **SMALL_PARAMS[name])
        interpreted, _ = artifacts.simulate(seed=2, engine="interpreted")
        compiled, _ = artifacts.simulate(seed=2, engine="compiled")
        assert interpreted.cycles == compiled.cycles
        assert interpreted.results == compiled.results

    def test_divergence_is_detected(self):
        """A deliberately broken compiled state must raise DivergenceError."""
        from repro.sim import DifferentialSimulator
        sim = DifferentialSimulator(counter_design())
        sim.set("enable", 1)
        sim.step(2)
        # Corrupt the compiled engine's copy of the counter register.
        slot = sim.compiled._slot_of["count"]
        sim.compiled._values[slot] ^= 1
        with pytest.raises(DivergenceError, match="count"):
            sim.step(1)

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_stimulus_transpose(self, seed):
        artifacts, run, inputs = differential_run("transpose", {"size": 4},
                                                  seed=seed)
        assert np.array_equal(run.memory_array("Co"),
                              artifacts.reference(inputs)["Co"])

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_stimulus_gemm(self, seed):
        artifacts, run, inputs = differential_run("gemm", {"size": 3},
                                                  seed=seed)
        assert np.array_equal(run.memory_array("C"),
                              artifacts.reference(inputs)["C"])


class TestBatchedEngine:
    @pytest.mark.parametrize("name", sorted(SMALL_PARAMS))
    def test_batched_matches_single_runs(self, name):
        """Every lane of a batched run reproduces its single-run result:
        same memory contents, same cycle count."""
        artifacts = build_kernel(name, **SMALL_PARAMS[name])
        seeds = [3, 4, 5]
        batch, inputs_per_lane = artifacts.simulate_batch(seeds)
        assert bool(batch.done.all())
        for lane, seed in enumerate(seeds):
            single, inputs = artifacts.simulate(seed=seed, engine="compiled")
            assert single.cycles == int(batch.cycles[lane])
            for output_name in artifacts.reference(inputs):
                assert np.array_equal(single.memory_array(output_name),
                                      batch.memory_array(output_name, lane))

    def test_batched_randomized_sweep(self):
        """A wider randomized stimulus sweep on gemm, checked vs numpy."""
        artifacts = build_kernel("gemm", size=3)
        seeds = list(range(10, 26))
        batch, inputs_per_lane = artifacts.simulate_batch(seeds)
        for lane, inputs in enumerate(inputs_per_lane):
            expected = artifacts.reference(inputs)["C"]
            assert np.array_equal(batch.memory_array("C", lane), expected)

    def test_batched_lane_validation(self):
        from repro.sim import BatchedSimulator
        with pytest.raises(SimulationError, match="at least one lane"):
            BatchedSimulator(counter_design(), lanes=0)

    def test_batched_counter_per_lane_inputs(self):
        from repro.sim import BatchedSimulator
        sim = BatchedSimulator(counter_design(), lanes=3)
        sim.set("enable", np.array([1, 0, 1]))
        sim.step(5)
        assert list(sim.get("value")) == [5, 0, 5]


class TestRunDesignEngineParity:
    def test_run_design_engine_kwarg(self):
        """run_design(engine=...) is accepted and produces equal runs."""
        artifacts = build_kernel("fifo", depth=64)
        design = artifacts.generate_design()
        inputs = artifacts.make_inputs(0)
        memories = {name: (memref_type, inputs[name])
                    for name, memref_type in artifacts.interfaces.items()}
        runs = {engine: run_design(design, memories=memories,
                                   scalar_inputs=artifacts.scalar_args,
                                   drain_cycles=16, engine=engine)
                for engine in ("interpreted", "compiled")}
        assert runs["interpreted"].cycles == runs["compiled"].cycles
        out = runs["interpreted"].memories["dout"].data
        assert out == runs["compiled"].memories["dout"].data
