"""End-to-end functional validation: generated designs vs numpy references.

These are the reproduction's equivalent of RTL simulation of the synthesized
accelerators: every kernel is compiled by the HIR compiler and executed
cycle-by-cycle; the memory contents at completion must match the numpy
reference model.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import build_kernel
from repro.passes import optimization_pipeline
from repro.sim import run_design
from repro.verilog import generate_verilog

SMALL_PARAMS = {
    "transpose": {"size": 8},
    "stencil_1d": {"size": 32},
    "histogram": {"pixels": 64, "bins": 32},
    "gemm": {"size": 4},
    "convolution": {"size": 8},
    "fifo": {"depth": 64},
}


def compile_and_run(name, params, seed=1, optimize=False, drain_cycles=16):
    artifacts = build_kernel(name, **params)
    if optimize:
        optimization_pipeline(verify_each=False).run(artifacts.module)
    design = generate_verilog(artifacts.module, top=artifacts.top).design
    inputs = artifacts.make_inputs(seed)
    run = run_design(
        design,
        memories={arg: (memref_type, inputs[arg])
                  for arg, memref_type in artifacts.interfaces.items()},
        scalar_inputs=artifacts.scalar_args,
        drain_cycles=drain_cycles,
        max_cycles=50000,
    )
    expected = artifacts.reference(inputs)
    return run, expected


def compare(name, run, expected):
    assert run.done, f"{name}: design never asserted done"
    for output_name, reference in expected.items():
        produced = run.memory_array(output_name)
        reference = np.asarray(reference)
        if name == "stencil_1d":
            produced, reference = produced[1:], reference[1:]  # warm-up element
        assert np.array_equal(produced, reference), (
            f"{name}: output {output_name} mismatch\n{produced}\n!=\n{reference}"
        )


@pytest.mark.parametrize("name", sorted(SMALL_PARAMS))
def test_kernel_matches_reference(name):
    run, expected = compile_and_run(name, SMALL_PARAMS[name])
    compare(name, run, expected)


@pytest.mark.parametrize("name", ["transpose", "stencil_1d", "histogram", "gemm"])
def test_optimized_kernel_matches_reference(name):
    """The optimization pipeline must not change behaviour."""
    run, expected = compile_and_run(name, SMALL_PARAMS[name], seed=2, optimize=True)
    compare(name, run, expected)


@pytest.mark.parametrize("seed", [3, 4, 5])
def test_gemm_multiple_seeds(seed):
    run, expected = compile_and_run("gemm", {"size": 3}, seed=seed)
    compare("gemm", run, expected)


def test_transpose_latency_is_close_to_ideal():
    """The pipelined transpose should take roughly size*(size+2) cycles."""
    run, _ = compile_and_run("transpose", {"size": 8})
    assert run.cycles <= 8 * (8 + 4) + 10


def test_fifo_streams_all_data_with_overlap():
    run, expected = compile_and_run("fifo", {"depth": 64})
    compare("fifo", run, expected)
    # Producer and consumer overlap: total latency is far below 2 * depth.
    assert run.cycles < 2 * 64


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_transpose_is_correct_for_random_matrices(seed):
    """Property: the generated transpose hardware transposes any matrix."""
    run, expected = compile_and_run("transpose", {"size": 4}, seed=seed)
    compare("transpose", run, expected)


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_histogram_counts_every_pixel(seed):
    run, expected = compile_and_run("histogram", {"pixels": 32, "bins": 16},
                                    seed=seed)
    compare("histogram", run, expected)
    assert int(run.memory_array("hist").sum()) == 32
