"""Tests for the cycle-accurate Verilog-AST simulator."""

import pytest

from repro.ir import SimulationError
from repro.sim import PipelinedMultiplierModel, Simulator
from repro.verilog import (
    BinOp,
    Const,
    Design,
    If,
    INPUT,
    MemIndex,
    MemWrite,
    Module,
    NonBlockingAssign,
    OUTPUT,
    Ref,
)


def counter_design(width=8):
    module = Module("counter")
    module.add_port("clk", INPUT, 1)
    module.add_port("rst", INPUT, 1)
    module.add_port("enable", INPUT, 1)
    module.add_port("value", OUTPUT, width)
    module.add_reg("count", width)
    module.add_assign("value", Ref("count"))
    always = module.add_always()
    always.body.append(
        If(Ref("enable"),
           [NonBlockingAssign("count", BinOp("+", Ref("count"), Const(1, width)))])
    )
    design = Design(top="counter")
    design.add(module)
    return design


class TestBasicSimulation:
    def test_counter_counts_when_enabled(self):
        sim = Simulator(counter_design())
        sim.set("enable", 1)
        sim.step(5)
        assert sim.get("value") == 5

    def test_counter_holds_when_disabled(self):
        sim = Simulator(counter_design())
        sim.set("enable", 1)
        sim.step(3)
        sim.set("enable", 0)
        sim.step(4)
        assert sim.get("value") == 3

    def test_counter_wraps_at_width(self):
        sim = Simulator(counter_design(width=4))
        sim.set("enable", 1)
        sim.step(20)
        assert sim.get("value") == 4  # 20 mod 16

    def test_reset_restores_initial_state(self):
        sim = Simulator(counter_design())
        sim.set("enable", 1)
        sim.step(3)
        sim.reset()
        assert sim.get("count") == 0
        assert sim.cycle == 0

    def test_unknown_signal_and_input_errors(self):
        sim = Simulator(counter_design())
        with pytest.raises(SimulationError):
            sim.get("missing")
        with pytest.raises(SimulationError):
            sim.set("value", 1)   # an output, not an input

    def test_nonblocking_semantics_two_phase(self):
        """A swap register pair must exchange values, not duplicate one."""
        module = Module("swap")
        module.add_port("clk", INPUT, 1)
        module.add_reg("a", 8, init=1)
        module.add_reg("b", 8, init=2)
        always = module.add_always()
        always.body.append(NonBlockingAssign("a", Ref("b")))
        always.body.append(NonBlockingAssign("b", Ref("a")))
        design = Design(top="swap")
        design.add(module)
        sim = Simulator(design)
        sim.step()
        assert (sim.get("a"), sim.get("b")) == (2, 1)


class TestMemoriesAndHierarchy:
    def test_memory_write_then_read(self):
        module = Module("mem")
        module.add_port("clk", INPUT, 1)
        module.add_port("wr", INPUT, 1)
        module.add_port("addr", INPUT, 4)
        module.add_port("data", INPUT, 8)
        module.add_port("q", OUTPUT, 8)
        module.add_memory("storage", 8, 16)
        module.add_reg("q_reg", 8)
        module.add_assign("q", Ref("q_reg"))
        always = module.add_always()
        always.body.append(If(Ref("wr"), [MemWrite("storage", Ref("addr"), Ref("data"))]))
        always.body.append(NonBlockingAssign("q_reg", MemIndex("storage", Ref("addr"))))
        design = Design(top="mem")
        design.add(module)
        sim = Simulator(design)
        sim.set("wr", 1); sim.set("addr", 3); sim.set("data", 99)
        sim.step()
        sim.set("wr", 0)
        sim.step()
        assert sim.get("q") == 99
        assert sim.memory("storage")[3] == 99

    def test_hierarchical_design_is_flattened(self):
        child = Module("adder")
        child.add_port("clk", INPUT, 1)
        child.add_port("a", INPUT, 8)
        child.add_port("b", INPUT, 8)
        child.add_port("s", OUTPUT, 8)
        child.add_assign("s", BinOp("+", Ref("a"), Ref("b")))
        top = Module("top")
        top.add_port("clk", INPUT, 1)
        top.add_port("x", INPUT, 8)
        top.add_port("y", OUTPUT, 8)
        top.add_wire("sum_wire", 8)
        top.add_instance("adder", "u0", {"clk": Ref("clk"), "a": Ref("x"),
                                         "b": Const(5, 8), "s": Ref("sum_wire")})
        top.add_assign("y", Ref("sum_wire"))
        design = Design(top="top")
        design.add(top)
        design.add(child)
        sim = Simulator(design)
        sim.set("x", 7)
        sim.eval_comb()
        assert sim.get("y") == 12

    def test_external_model_is_used(self):
        top = Module("top")
        top.add_port("clk", INPUT, 1)
        top.add_port("a", INPUT, 32)
        top.add_port("b", INPUT, 32)
        top.add_port("p", OUTPUT, 32)
        top.add_wire("product", 32)
        top.add_instance("mult_3stage", "u0",
                         {"clk": Ref("clk"), "a": Ref("a"), "b": Ref("b"),
                          "result0": Ref("product")})
        top.add_assign("p", Ref("product"))
        design = Design(top="top")
        design.add(top)
        sim = Simulator(design, external_models={
            "mult_3stage": lambda: PipelinedMultiplierModel(3)})
        sim.set("a", 6); sim.set("b", 7)
        sim.step(3)
        sim.eval_comb()
        assert sim.get("p") == 42

    def test_missing_external_model_raises(self):
        top = Module("top")
        top.add_port("clk", INPUT, 1)
        top.add_instance("unknown_ip", "u0", {"clk": Ref("clk")})
        design = Design(top="top")
        design.add(top)
        with pytest.raises(SimulationError, match="behavioural model"):
            Simulator(design)

    def test_combinational_loop_detected(self):
        module = Module("loop")
        module.add_port("clk", INPUT, 1)
        module.add_wire("a", 1)
        module.add_wire("b", 1)
        module.add_assign("a", Ref("b"))
        module.add_assign("b", Ref("a"))
        design = Design(top="loop")
        design.add(module)
        with pytest.raises(SimulationError, match="combinational loop"):
            Simulator(design)

    def test_multiple_drivers_detected(self):
        module = Module("dd")
        module.add_port("clk", INPUT, 1)
        module.add_wire("a", 1)
        module.add_assign("a", Const(0, 1))
        module.add_assign("a", Const(1, 1))
        design = Design(top="dd")
        design.add(module)
        with pytest.raises(SimulationError, match="multiple continuous drivers"):
            Simulator(design)


class TestHandwrittenFifo:
    def test_fifo_push_pop_order(self):
        from repro.kernels.fifo import build_verilog_fifo
        design = build_verilog_fifo(depth=8)
        sim = Simulator(design)
        for value in (10, 20, 30):
            sim.set("wr_en", 1); sim.set("wr_data", value); sim.set("rd_en", 0)
            sim.step()
        sim.set("wr_en", 0)
        popped = []
        for _ in range(3):
            sim.set("rd_en", 1)
            sim.step()
            sim.eval_comb()
            popped.append(sim.get("rd_data"))
        assert popped == [10, 20, 30]

    def test_fifo_empty_flag(self):
        from repro.kernels.fifo import build_verilog_fifo
        sim = Simulator(build_verilog_fifo(depth=4))
        sim.eval_comb()
        assert sim.get("empty") == 1
        sim.set("wr_en", 1); sim.set("wr_data", 5)
        sim.step()
        sim.eval_comb()
        assert sim.get("empty") == 0
