"""The fused whole-run ``vector`` engine (:mod:`repro.sim.engine.vector`).

Bit-exactness versus the interpreted reference — cycle counts, result
ports, memory contents and interface access counters — over every
registered kernel, plus the engine's API surface: the run-level-only
contract (no per-cycle simulator), the typed
:class:`VectorUnsupported` fallback to the compiled engine, the steady-state
verification hook and the compile cache shared with the compiled engine.
"""

import pytest

from repro.ir.errors import SimulationError
from repro.kernels import build_kernel, kernel_names
from repro.sim import (
    SimulationTimeout,
    VectorUnsupported,
    available_engines,
    create_simulator,
    run_design_vector,
    set_default_engine,
)
from repro.sim.testbench import run_design_impl

#: Tier-1 problem sizes (kernels not listed use their defaults).
SMALL_PARAMS = {
    "transpose": {"size": 8},
    "stencil_1d": {"size": 32},
    "histogram": {"pixels": 64, "bins": 32},
    "gemm": {"size": 4},
    "convolution": {"size": 8},
    "fifo": {"depth": 64},
    "matvec": {"size": 4},
    "prefix_sum": {"size": 8},
    "spmv": {"rows": 4, "nnz": 2},
    "sorting_network": {"size": 4},
}


def run_kernel(artifacts, engine, seed=7):
    inputs = artifacts.make_inputs(seed)
    design = artifacts.flow().design
    return run_design_impl(
        design,
        memories={name: (memref_type, inputs.get(name))
                  for name, memref_type in artifacts.interfaces.items()},
        scalar_inputs=artifacts.scalar_args,
        max_cycles=50000, drain_cycles=16, engine=engine)


def assert_identical(reference, vector, label):
    assert vector.fallback is None, (label, vector.fallback)
    assert vector.engine == "vector", label
    assert vector.cycles == reference.cycles, label
    assert vector.results == reference.results, label
    for name, memory in reference.memories.items():
        other = vector.memories[name]
        assert other.data == memory.data, (label, name)
        assert (other.reads, other.writes) == (memory.reads, memory.writes), \
            (label, name)


@pytest.mark.parametrize("kernel", kernel_names())
def test_vector_matches_interpreted(kernel):
    artifacts = build_kernel(kernel, **SMALL_PARAMS.get(kernel, {}))
    reference = run_kernel(artifacts, "interpreted")
    vector = run_kernel(artifacts, "vector")
    assert_identical(reference, vector, kernel)


def test_vector_is_listed_and_settable():
    assert "vector" in available_engines()
    previous = set_default_engine("vector")
    try:
        artifacts = build_kernel("transpose", size=4)
        run = run_kernel(artifacts, engine=None)
        assert run.engine == "vector"
    finally:
        set_default_engine(previous)


def test_vector_has_no_per_cycle_simulator():
    design = build_kernel("transpose", size=4).flow().design
    with pytest.raises(SimulationError, match="whole runs"):
        create_simulator(design, engine="vector")


def test_profiler_falls_back_to_compiled_with_typed_reason():
    """Per-cycle profiling is unobservable from a fused run: the run must
    execute on the compiled engine and carry the reason, not crash."""
    from repro.obs.simprofile import SimProfiler
    artifacts = build_kernel("transpose", size=4)
    inputs = artifacts.make_inputs(1)
    design = artifacts.flow().design
    memories = {name: (memref_type, inputs.get(name))
                for name, memref_type in artifacts.interfaces.items()}
    with pytest.raises(VectorUnsupported):
        run_design_vector(design, memories=memories,
                          profiler=SimProfiler())
    profiler = SimProfiler()
    run = run_design_impl(design, memories=memories, engine="vector",
                          profiler=profiler)
    assert run.engine == "compiled"
    assert "profil" in run.fallback
    assert run.profile is not None


def test_steady_state_hint_is_verified():
    """A drifting static-timing prediction is a loud error, not a silent
    mis-speedup."""
    from repro.graph.timing import FunctionTiming
    artifacts = build_kernel("transpose", size=4)
    inputs = artifacts.make_inputs(1)
    design = artifacts.flow().design
    memories = {name: (memref_type, inputs.get(name))
                for name, memref_type in artifacts.interfaces.items()}
    good = run_design_vector(design, memories=memories)
    wrong = FunctionTiming(done=good.cycles + 17,
                           last_activity=good.cycles + 17)
    with pytest.raises(SimulationError, match="predicted"):
        run_design_vector(design, memories=memories, steady_state=wrong)


def test_differential_engine_grows_a_vector_leg():
    """engine="differential" now cross-checks the fused run too; a clean
    kernel must still pass the three-way comparison."""
    artifacts = build_kernel("matvec", size=4)
    run = run_kernel(artifacts, "differential")
    assert run.done


def test_vector_timeout_is_typed():
    artifacts = build_kernel("gemm", size=4)
    inputs = artifacts.make_inputs(1)
    design = artifacts.flow().design
    memories = {name: (memref_type, inputs.get(name))
                for name, memref_type in artifacts.interfaces.items()}
    with pytest.raises(SimulationTimeout) as excinfo:
        run_design_vector(design, memories=memories, max_cycles=5)
    assert excinfo.value.undone_lanes == (0,)
    assert excinfo.value.max_cycles == 5


def test_fused_program_is_cached_per_interface_signature():
    from repro.sim.engine.cache import compiled_artifacts
    from repro.sim.engine.vector import _cached_run
    artifacts = build_kernel("transpose", size=4)
    inputs = artifacts.make_inputs(1)
    design = artifacts.flow().design
    memories = {name: (memref_type, inputs.get(name))
                for name, memref_type in artifacts.interfaces.items()}
    _, first = _cached_run(design, None, memories)
    _, second = _cached_run(design, None, memories)
    assert first is second
    # ...and the scalar step functions are the compiled engine's.
    shared = compiled_artifacts(design, None, None, vector=False)
    cached, _ = _cached_run(design, None, memories)
    assert cached.step_fns is shared.step_fns
