"""Atomic publication: a target file is whole or absent, never torn."""

import json
import os

import pytest

from repro.resilience import FaultPlan, InjectedIOError, install_plan, set_plan
from repro.store.io import (
    TMP_MARKER,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    is_tmp_debris,
)


@pytest.fixture(autouse=True)
def no_ambient_plan():
    previous = set_plan(None)
    try:
        yield
    finally:
        set_plan(previous)


def _entries(directory):
    return sorted(os.listdir(directory))


class TestHappyPath:
    def test_writes_bytes_and_creates_parents(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "artifact.bin"
        returned = atomic_write_bytes(str(target), b"payload")
        assert returned == str(target)
        assert target.read_bytes() == b"payload"

    def test_overwrites_atomically(self, tmp_path):
        target = tmp_path / "file.txt"
        atomic_write_text(str(target), "old")
        atomic_write_text(str(target), "new")
        assert target.read_text() == "new"
        # No temp debris left behind by either publish.
        assert _entries(tmp_path) == ["file.txt"]

    def test_json_round_trips_with_trailing_newline(self, tmp_path):
        target = tmp_path / "payload.json"
        atomic_write_json(str(target), {"b": 2, "a": [1, 2]})
        text = target.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == {"a": [1, 2], "b": 2}

    def test_is_tmp_debris(self):
        assert is_tmp_debris(f"artifact.bin{TMP_MARKER}abc123")
        assert not is_tmp_debris("artifact.bin")


class TestUnderFaults:
    def test_io_error_leaves_target_and_directory_untouched(self, tmp_path):
        target = tmp_path / "file.txt"
        atomic_write_text(str(target), "original")
        with install_plan(FaultPlan.parse("store.write:io_error")):
            with pytest.raises(InjectedIOError):
                atomic_write_text(str(target), "replacement")
        assert target.read_text() == "original"
        assert _entries(tmp_path) == ["file.txt"]

    def test_torn_write_leaves_partial_debris_not_target(self, tmp_path):
        target = tmp_path / "file.txt"
        atomic_write_text(str(target), "original")
        with install_plan(FaultPlan.parse("store.write:torn")):
            with pytest.raises(InjectedIOError):
                atomic_write_text(str(target), "replacement-payload")
        assert target.read_text() == "original"
        debris = [name for name in _entries(tmp_path) if is_tmp_debris(name)]
        assert len(debris) == 1
        partial = (tmp_path / debris[0]).read_bytes()
        assert 0 < len(partial) < len(b"replacement-payload")

    def test_fsync_failure_never_publishes(self, tmp_path):
        target = tmp_path / "file.txt"
        with install_plan(FaultPlan.parse("store.fsync:io_error")):
            with pytest.raises(InjectedIOError):
                atomic_write_text(str(target), "data")
        assert not target.exists()
        assert _entries(tmp_path) == []

    def test_rename_failure_never_publishes(self, tmp_path):
        target = tmp_path / "file.txt"
        atomic_write_text(str(target), "original")
        with install_plan(FaultPlan.parse("store.rename:io_error")):
            with pytest.raises(InjectedIOError):
                atomic_write_text(str(target), "replacement")
        assert target.read_text() == "original"
        assert _entries(tmp_path) == ["file.txt"]

    def test_corrupt_payload_still_publishes_whole_file(self, tmp_path):
        # Bit-rot on the wire: the file is complete but its *content* is
        # wrong — exactly what checksummed blobs exist to catch.
        target = tmp_path / "file.bin"
        payload = bytes(range(256))
        with install_plan(FaultPlan.parse("store.write:corrupt")):
            atomic_write_bytes(str(target), payload)
        written = target.read_bytes()
        assert len(written) == len(payload)
        assert written != payload
