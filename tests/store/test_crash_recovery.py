"""Crash safety, end to end: SIGKILL a real publisher process mid-publish.

The ``crash`` fault kind SIGKILLs the process at a chosen fault point — the
real thing, not a simulation.  A parent test process drives a child through
each window of the publish path (mid-write, pre-rename) and then proves the
store recovers: no torn blob is ever served, ``verify`` sweeps the debris,
and a clean re-publish round-trips.
"""

import os
import signal
import subprocess
import sys

import pytest

from repro.store import ArtifactStore

_CHILD = r"""
import sys
from repro.store import ArtifactStore
store = ArtifactStore(sys.argv[1])
store.put("ir", "crash-key", b"payload-bytes-" * 64)
print("published")
"""


def _run_child(store_root, fault_plan):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.join(os.path.dirname(__file__), "..", "..",
                                   "src"),
                      env.get("PYTHONPATH")]))
    if fault_plan:
        env["REPRO_FAULT_PLAN"] = fault_plan
    else:
        env.pop("REPRO_FAULT_PLAN", None)
    return subprocess.run(
        [sys.executable, "-c", _CHILD, store_root],
        env=env, capture_output=True, text=True, timeout=120)


@pytest.mark.parametrize("fault_plan", [
    "store.write:crash",         # killed before any bytes hit the temp file
    "store.fsync:crash",         # killed with a full temp file, pre-rename
    "store.rename:crash",        # killed after fsync, just before publish
])
def test_sigkill_mid_publish_never_leaves_a_torn_blob(tmp_path, fault_plan):
    root = str(tmp_path / "store")
    result = _run_child(root, fault_plan)
    assert result.returncode == -signal.SIGKILL, result.stderr

    store = ArtifactStore(root)
    # The blob must be absent — never half-present.
    assert store.get("ir", "crash-key") is None
    # verify cleans up whatever the dead process left behind and is then ok.
    report = store.verify()
    assert report.ok
    assert report.corrupt == []

    # A clean rerun of the same publisher succeeds and round-trips.
    rerun = _run_child(root, fault_plan=None)
    assert rerun.returncode == 0, rerun.stderr
    assert "published" in rerun.stdout
    assert ArtifactStore(root).get("ir", "crash-key") == \
        b"payload-bytes-" * 64
    assert ArtifactStore(root).verify().ok
