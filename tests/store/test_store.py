"""ArtifactStore: checksummed round-trips, quarantine, self-healing, gc.

The store's contract is *never serve a wrong byte*: every payload is
sha256-verified on read, corruption quarantines the blob (a miss, not an
error), and the next publish heals it.  Faults during publication degrade
to "not persisted", never to a torn blob.
"""

import os

import pytest

import repro.store.store as store_module
from repro.resilience import FaultPlan, install_plan, set_plan
from repro.store import (
    ArtifactStore,
    StoreError,
    StoreLockTimeout,
    get_store,
    store_counters,
)
from repro.store.io import is_tmp_debris


@pytest.fixture(autouse=True)
def no_ambient_plan():
    previous = set_plan(None)
    try:
        yield
    finally:
        set_plan(previous)


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(str(tmp_path / "store"))


def _flip_byte(path, offset=-1):
    with open(path, "r+b") as handle:
        data = bytearray(handle.read())
        data[offset] ^= 0xFF
        handle.seek(0)
        handle.write(data)


class TestRoundTrip:
    def test_bytes_round_trip(self, store):
        assert store.get("verilog", "k") is None
        path = store.put("verilog", "k", b"module top; endmodule")
        assert path is not None and os.path.exists(path)
        assert store.get("verilog", "k") == b"module top; endmodule"
        assert store.has("verilog", "k")

    def test_text_round_trip(self, store):
        store.put("ir", "k", "hir text → unicode")
        assert store.get_text("ir", "k") == "hir text → unicode"

    def test_kinds_are_namespaces(self, store):
        store.put("ir", "same-key", b"one")
        store.put("verilog", "same-key", b"two")
        assert store.get("ir", "same-key") == b"one"
        assert store.get("verilog", "same-key") == b"two"

    def test_unsafe_keys_are_hashed_not_traversed(self, store):
        key = "../../../etc/passwd and spaces"
        path = store.put("ir", key, b"payload")
        assert path.startswith(store.objects_dir)
        assert ".." not in os.path.relpath(path, store.objects_dir)
        assert store.get("ir", key) == b"payload"

    def test_identical_put_is_a_noop_rewrite(self, store):
        before = store_counters()["writes"]
        store.put("ir", "k", b"payload")
        store.put("ir", "k", b"payload")
        assert store_counters()["writes"] == before + 1

    def test_survives_reopen(self, tmp_path):
        root = str(tmp_path / "store")
        ArtifactStore(root).put("ir", "k", b"payload")
        assert ArtifactStore(root).get("ir", "k") == b"payload"

    def test_get_store_memoizes(self, tmp_path):
        root = str(tmp_path / "store")
        assert get_store(root) is get_store(root)

    def test_root_collision_with_file_is_typed(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.write_text("occupied")
        with pytest.raises(StoreError):
            ArtifactStore(str(target))


class TestCorruption:
    def test_corrupt_blob_is_a_miss_and_quarantined(self, store):
        path = store.put("ir", "k", b"payload-bytes")
        _flip_byte(path)
        before = store_counters()["quarantined"]
        assert store.get("ir", "k") is None
        assert not os.path.exists(path)
        assert len(os.listdir(store.quarantine_dir)) == 1
        assert store_counters()["quarantined"] == before + 1

    def test_self_heals_on_next_put(self, store):
        path = store.put("ir", "k", b"payload-bytes")
        _flip_byte(path)
        assert store.get("ir", "k") is None
        store.put("ir", "k", b"payload-bytes")
        assert store.get("ir", "k") == b"payload-bytes"
        assert store.verify().ok

    def test_truncated_blob_is_a_miss(self, store):
        path = store.put("ir", "k", b"payload-bytes")
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - 4)
        assert store.get("ir", "k") is None

    def test_wrong_kind_header_is_a_miss(self, store):
        path = store.put("ir", "k", b"payload")
        raw = open(path, "rb").read()
        os.unlink(path)
        other = store.blob_path("verilog", "k")
        os.makedirs(os.path.dirname(other), exist_ok=True)
        with open(other, "wb") as handle:
            handle.write(raw)           # an "ir" blob where verilog belongs
        assert store.get("verilog", "k") is None

    def test_verify_quarantines_corrupt_blobs(self, store):
        good = store.put("ir", "good", b"fine")
        bad = store.put("ir", "bad", b"will rot")
        _flip_byte(bad)
        report = store.verify()
        assert not report.ok
        assert report.checked == 2
        assert report.corrupt == [bad] and report.quarantined == 1
        assert os.path.exists(good) and not os.path.exists(bad)
        assert store.verify().ok        # second pass: clean

    def test_injected_corruption_is_caught_end_to_end(self, store):
        # store.write:corrupt damages the encoded blob *after* its checksum
        # was computed — the read path must detect and quarantine it.
        with install_plan(FaultPlan.parse("store.write:corrupt")):
            store.put("ir", "k", b"payload-bytes")
        assert store.get("ir", "k") is None
        assert store.verify().ok        # quarantine emptied the objects dir


class TestFaultedPublication:
    def test_write_fault_degrades_to_unpersisted(self, store):
        before = store_counters()["write_failures"]
        with install_plan(FaultPlan.parse("store.write:io_error")):
            assert store.put("ir", "k", b"payload") is None
        assert store_counters()["write_failures"] == before + 1
        assert store.get("ir", "k") is None
        store.put("ir", "k", b"payload")   # next session publishes fine
        assert store.get("ir", "k") == b"payload"

    def test_torn_write_debris_is_swept_by_verify(self, store):
        with install_plan(FaultPlan.parse("store.write:torn")):
            assert store.put("ir", "k", b"payload" * 100) is None
        debris = [name for _, _, files in os.walk(store.objects_dir)
                  for name in files if is_tmp_debris(name)]
        assert len(debris) == 1
        report = store.verify()
        assert report.debris_removed == 1
        assert report.ok

    def test_lock_faults_are_retried(self, store):
        with install_plan(FaultPlan.parse("store.lock:io_error*2")):
            assert store.put("ir", "k", b"payload") is not None
        assert store.get("ir", "k") == b"payload"

    def test_lock_timeout_is_typed(self, store, monkeypatch):
        monkeypatch.setattr(store_module, "_LOCK_ATTEMPTS", 3)
        with install_plan(FaultPlan.parse("store.lock:io_error*99")):
            with pytest.raises(StoreLockTimeout) as excinfo:
                store.put("ir", "k", b"payload")
        assert isinstance(excinfo.value, StoreError)

    def test_contended_lock_times_out_cleanly(self, store, monkeypatch):
        fcntl = pytest.importorskip("fcntl")
        monkeypatch.setattr(store_module, "_LOCK_ATTEMPTS", 3)
        fd = os.open(store.lock_path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            with pytest.raises(StoreLockTimeout):
                store.put("ir", "k", b"payload")
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)
        assert store.put("ir", "k", b"payload") is not None


class TestMaintenance:
    def test_gc_evicts_least_recently_used(self, store):
        import time
        for index in range(4):
            store.put("ir", f"k{index}", f"payload {index}".encode())
            time.sleep(0.01)            # distinct mtimes for LRU order
        store.get("ir", "k0")           # refresh k0's recency
        time.sleep(0.01)
        report = store.gc(max_blobs=2)
        assert report.render().startswith("gc:")
        kept = {key for _, key in
                [(info.kind, info.key) for info in store.iter_blobs()]}
        assert store.blob_count() == 2
        assert store.get("ir", "k0") is not None    # recently used survived
        assert store.get("ir", "k3") is not None    # newest survived
        assert kept == {store._safe("k0"), store._safe("k3")}

    def test_gc_max_bytes(self, store):
        import time
        store.put("ir", "large", b"y" * 10_000)
        time.sleep(0.01)
        store.put("ir", "small", b"x")
        store.gc(max_bytes=5_000)       # evicts the older, larger blob
        assert store.blob_count() == 1
        assert store.get("ir", "small") == b"x"

    def test_clear_removes_everything(self, store):
        store.put("ir", "a", b"1")
        store.put("verilog", "b", b"2")
        assert store.clear() == 2
        assert store.blob_count() == 0
        assert store.get("ir", "a") is None

    def test_stats_report_renders(self, store):
        store.put("ir", "a", b"1234")
        text = store.stats().render()
        assert "ir" in text and "1 blob" in text
