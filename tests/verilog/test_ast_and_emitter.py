"""Tests for the Verilog AST and text emitter."""

import pytest

from repro.verilog import (
    BinOp,
    Const,
    Design,
    If,
    INPUT,
    MemIndex,
    Module,
    NonBlockingAssign,
    OUTPUT,
    Ref,
    Ternary,
    UnOp,
    emit_design,
    emit_expr,
    emit_module,
    or_reduce,
)
from repro.verilog.naming import SignalNamer, sanitize


class TestExpressions:
    @pytest.mark.parametrize("expr,text", [
        (Const(5, 8), "8'd5"),
        (Const(-3, 8), "-8'd3"),
        (Ref("foo"), "foo"),
        (BinOp("+", Ref("a"), Const(1, 4)), "(a + 4'd1)"),
        (UnOp("!", Ref("x")), "(!x)"),
        (Ternary(Ref("s"), Ref("a"), Ref("b")), "(s ? a : b)"),
        (MemIndex("mem", Ref("addr")), "mem[addr]"),
    ])
    def test_emit_expr(self, expr, text):
        assert emit_expr(expr) == text

    def test_refs_enumeration(self):
        expr = Ternary(Ref("s"), BinOp("+", Ref("a"), Ref("b")), MemIndex("m", Ref("i")))
        assert set(expr.refs()) == {"s", "a", "b", "m", "i"}

    def test_or_reduce(self):
        assert emit_expr(or_reduce([])) == "1'd0"
        assert emit_expr(or_reduce([Ref("a")])) == "a"
        assert emit_expr(or_reduce([Ref("a"), Ref("b")])) == "(a | b)"


class TestModuleEmission:
    def build_counter(self):
        module = Module("counter")
        module.add_port("clk", INPUT, 1)
        module.add_port("rst", INPUT, 1)
        module.add_port("value", OUTPUT, 8)
        module.add_reg("count", 8)
        module.add_assign("value", Ref("count"))
        always = module.add_always()
        always.body.append(
            If(Ref("rst"),
               [NonBlockingAssign("count", Const(0, 8))],
               [NonBlockingAssign("count", BinOp("+", Ref("count"), Const(1, 8)))])
        )
        return module

    def test_module_text_structure(self):
        text = emit_module(self.build_counter())
        assert text.startswith("module counter(clk, rst, value);")
        assert "input wire clk;" in text
        assert "output wire [7:0] value;" in text
        assert "reg [7:0] count" in text
        assert "always @(posedge clk) begin" in text
        assert "count <= (count + 8'd1);" in text
        assert text.rstrip().endswith("endmodule")

    def test_memory_and_comment_emission(self):
        module = Module("m")
        module.add_port("clk", INPUT, 1)
        module.add_comment("storage")
        module.add_memory("buf", 32, 64, kind="bram")
        text = emit_module(module)
        assert "// storage" in text
        assert "reg [31:0] buf [0:63];" in text

    def test_instance_emission(self):
        module = Module("top")
        module.add_port("clk", INPUT, 1)
        module.add_instance("child", "u0", {"clk": Ref("clk"), "x": Const(1, 1)})
        text = emit_module(module)
        assert "child u0 (" in text
        assert ".clk(clk)" in text

    def test_design_emission_orders_children_first(self):
        child = Module("child")
        child.add_port("clk", INPUT, 1)
        top = Module("top")
        top.add_port("clk", INPUT, 1)
        top.add_instance("child", "u0", {"clk": Ref("clk")})
        design = Design(top="top")
        design.add(top)
        design.add(child)
        text = emit_design(design)
        assert text.index("module child") < text.index("module top")

    def test_design_queries(self):
        design = Design(top="top")
        top = Module("top")
        top.add_instance("child", "u0", {})
        design.add(top)
        design.add(Module("child"))
        design.add(Module("orphan"))
        assert set(design.all_instantiated()) == {"top", "child"}
        assert design.top_module is top

    def test_signal_width_lookup(self):
        module = self.build_counter()
        assert module.signal_width("count") == 8
        assert module.signal_width("value") == 8
        assert module.signal_width("nope") is None

    def test_bad_port_direction(self):
        with pytest.raises(ValueError):
            Module("m").add_port("x", "inout", 1)


class TestNaming:
    def test_sanitize(self):
        assert sanitize("a.b c") == "a_b_c"
        assert sanitize("3x") .startswith("v_")
        assert sanitize("module") == "module_sig"

    def test_namer_uniques(self):
        namer = SignalNamer()
        first = namer.fresh("x")
        second = namer.fresh("x")
        assert first == "x" and second == "x_1"

    def test_for_value_is_stable(self):
        from repro.hir.ops import ConstantOp
        from repro.ir.types import I32
        namer = SignalNamer()
        value = ConstantOp(1, I32).results[0]
        assert namer.for_value(value) == namer.for_value(value)
