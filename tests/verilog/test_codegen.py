"""Tests for the HIR-to-Verilog code generator (Table 3 construct mapping)."""

import pytest

from repro.ir import LoweringError
from repro.ir.types import I32
from repro.hir import DesignBuilder
from repro.kernels import transpose, stencil1d, histogram
from repro.verilog import (
    CodegenOptions,
    Comment,
    Instance,
    MemoryDecl,
    RegDecl,
    emit_design,
    generate_verilog,
)
from repro.verilog.ast import AlwaysFF, Assign


class TestTable3Mapping:
    """Table 3: each HIR construct maps to the documented hardware."""

    def test_functions_become_modules(self):
        result = generate_verilog(transpose.build_hir(4).module)
        assert "transpose" in result.design.modules
        module = result.design.module("transpose")
        port_names = {port.name for port in module.ports}
        assert {"clk", "rst", "start", "done"} <= port_names

    def test_memref_arguments_become_memory_interfaces(self):
        result = generate_verilog(transpose.build_hir(4).module)
        ports = {p.name for p in result.design.module("transpose").ports}
        assert {"Ai_addr", "Ai_rd_en", "Ai_rd_data",
                "Co_addr", "Co_wr_en", "Co_wr_data"} <= ports

    def test_for_loops_become_state_machines(self):
        result = generate_verilog(transpose.build_hir(4).module)
        text = emit_design(result.design)
        assert "state machine for loop" in text
        # Two loops -> two iteration pulses.
        assert "loop_i_iter" in text and "loop_j_iter" in text

    def test_delay_becomes_shift_register(self):
        result = generate_verilog(transpose.build_hir(4).module)
        module = result.design.module("transpose")
        shift_regs = [item for item in module.items
                      if isinstance(item, RegDecl) and "_sr" in item.name]
        assert shift_regs

    def test_local_alloc_becomes_ram(self):
        result = generate_verilog(histogram.build_hir(16, 16).module)
        module = result.design.module("histogram")
        memories = module.items_of_type(MemoryDecl)
        assert memories and memories[0].depth == 16
        assert memories[0].kind == "bram"

    def test_register_memref_becomes_registers(self):
        result = generate_verilog(stencil1d.build_hir(16).module)
        module = result.design.module("stencil_1d")
        window_regs = [item for item in module.items
                       if isinstance(item, RegDecl) and item.name.startswith("W1")]
        assert len(window_regs) >= 2
        assert not [m for m in module.items_of_type(MemoryDecl)
                    if m.name.startswith("W1")]

    def test_schedules_become_pulse_registers(self):
        result = generate_verilog(transpose.build_hir(4).module)
        module = result.design.module("transpose")
        pulse_regs = [item for item in module.items
                      if isinstance(item, RegDecl) and "_d1" in item.name]
        assert pulse_regs

    def test_primitive_args_become_input_ports(self):
        result = generate_verilog(stencil1d.build_hir(16).module)
        ports = {p.name: p for p in result.design.module("stencil_1d").ports}
        assert ports["w0"].direction == "input"
        assert ports["w0"].width == 32


class TestCallsAndExternals:
    def build_mac_design(self):
        from repro.evaluation.figures import build_mac
        return build_mac(multiplier_stages=2)

    def test_call_becomes_instance(self):
        result = generate_verilog(self.build_mac_design(), top="mac")
        module = result.design.module("mac")
        instances = module.items_of_type(Instance)
        assert len(instances) == 1
        assert instances[0].module_name == "mult_2stage"

    def test_external_function_becomes_blackbox_shell(self):
        result = generate_verilog(self.build_mac_design(), top="mac")
        shell = result.design.module("mult_2stage")
        assert shell.external
        port_names = {p.name for p in shell.ports}
        assert {"a", "b", "result0", "start"} <= port_names

    def test_function_results_become_output_ports(self):
        result = generate_verilog(self.build_mac_design(), top="mac")
        module = result.design.module("mac")
        assert module.port("result0") is not None
        assert module.port("result0").width == 32

    def test_default_top_prefers_uncalled_function(self):
        result = generate_verilog(self.build_mac_design())
        assert result.design.top == "mac"


class TestCodegenOptions:
    def test_location_comments_emitted(self):
        options = CodegenOptions(emit_location_comments=True)
        result = generate_verilog(transpose.build_hir(4).module, options=options)
        comments = [item.text for item in
                    result.design.module("transpose").items_of_type(Comment)]
        assert any("hir.mem_read" in text for text in comments)

    def test_location_comments_suppressed(self):
        options = CodegenOptions(emit_location_comments=False)
        result = generate_verilog(transpose.build_hir(4).module, options=options)
        comments = [item.text for item in
                    result.design.module("transpose").items_of_type(Comment)]
        assert not any("hir.mem_read" in text for text in comments)

    def test_codegen_does_not_mutate_input(self):
        module = transpose.build_hir(4).module
        before = len(list(module.walk()))
        generate_verilog(module)
        assert len(list(module.walk())) == before

    def test_statistics(self):
        result = generate_verilog(self.build_two_function_module())
        assert result.statistics["functions"] == 2
        assert result.seconds > 0

    @staticmethod
    def build_two_function_module():
        design = DesignBuilder("two")
        with design.func("leaf", [("x", I32)], result_types=[I32]) as f:
            f.return_([f.arg("x")])
        with design.func("root", [("x", I32)], result_types=[I32]) as f:
            f.return_([f.call("leaf", [f.arg("x")], time=f.time)[0]])
        return design.module

    def test_empty_module_rejected(self):
        from repro.ir import ModuleOp
        with pytest.raises(LoweringError):
            generate_verilog(ModuleOp("empty"))

    def test_every_signal_reference_is_declared(self):
        """No dangling references in generated designs (besides ports)."""
        result = generate_verilog(transpose.build_hir(4).module)
        module = result.design.module("transpose")
        declared = {p.name for p in module.ports}
        for item in module.items:
            if hasattr(item, "name"):
                declared.add(item.name)
        referenced = set()
        for item in module.items:
            if isinstance(item, Assign):
                referenced.update(item.expr.refs())
            elif isinstance(item, AlwaysFF):
                for stmt in item.body:
                    referenced.update(_statement_refs(stmt))
        undeclared = {name for name in referenced if name not in declared}
        assert not undeclared, f"undeclared signals referenced: {undeclared}"


def _statement_refs(stmt):
    from repro.verilog.ast import If, MemWrite, NonBlockingAssign
    refs = set()
    if isinstance(stmt, NonBlockingAssign):
        refs.update(stmt.expr.refs())
    elif isinstance(stmt, MemWrite):
        refs.update(stmt.address.refs())
        refs.update(stmt.data.refs())
    elif isinstance(stmt, If):
        refs.update(stmt.condition.refs())
        for inner in stmt.then_body + stmt.else_body:
            refs.update(_statement_refs(inner))
    return refs
