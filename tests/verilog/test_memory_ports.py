"""Direct coverage of memory lowering and testbench memory edge cases.

``verilog/memory.py`` and ``sim/testbench.py`` were previously only
exercised through whole kernels; these tests pin down their contracts in
isolation: port-conflict detection, read/write offset semantics on the
interface protocol, delegation rules for memrefs passed to ``hir.call``,
and multi-port behaviour.
"""

import numpy as np
import pytest

from repro.ir.errors import LoweringError, SimulationError
from repro.ir.types import I32
from repro.hir.build import DesignBuilder
from repro.hir.types import MemrefType
from repro.passes.schedule_verifier import PORT_CONFLICT, verify_schedule
from repro.sim.testbench import (
    InterfaceMemory,
    flatten_tensor,
    run_design_impl,
    unflatten_tensor,
)
from repro.verilog.codegen import generate_verilog_impl
from repro.verilog.memory import interface_directions, interface_signals


# --------------------------------------------------------------------------- #
# interface_signals / interface_directions
# --------------------------------------------------------------------------- #


class TestInterfaceBuses:
    def test_read_port_buses(self):
        memref = MemrefType((8,), I32, "r")
        signals = interface_signals("a", memref)
        assert signals == {"a_addr": 3, "a_rd_en": 1, "a_rd_data": 32}
        directions = interface_directions("a", memref)
        assert directions["a_addr"] == "output"
        assert directions["a_rd_data"] == "input"

    def test_write_port_buses(self):
        signals = interface_signals("b", MemrefType((8,), I32, "w"))
        assert set(signals) == {"b_addr", "b_wr_en", "b_wr_data"}

    def test_rw_port_has_all_five_buses(self):
        signals = interface_signals("c", MemrefType((4, 4), I32, "rw"))
        assert set(signals) == {"c_addr", "c_rd_en", "c_rd_data",
                                "c_wr_en", "c_wr_data"}
        assert signals["c_addr"] == 4  # 16 elements -> 4 address bits

    def test_single_element_memref_gets_one_address_bit(self):
        assert interface_signals("d", MemrefType((1,), I32, "r"))["d_addr"] == 1


# --------------------------------------------------------------------------- #
# InterfaceMemory protocol (sim/testbench.py)
# --------------------------------------------------------------------------- #


class FakeSim:
    """Just enough of the Simulator surface for InterfaceMemory."""

    def __init__(self, signals=None):
        self.signals = dict(signals or {})

    def get(self, name):
        if name not in self.signals:
            raise SimulationError(f"unknown signal '{name}'")
        return self.signals[name]

    def set(self, name, value):
        self.signals[name] = value


class TestInterfaceMemory:
    def test_read_latency_is_one_cycle(self):
        memory = InterfaceMemory("m", MemrefType((4,), I32, "r"),
                                 [10, 11, 12, 13])
        sim = FakeSim({"m_addr": 2, "m_rd_en": 1})
        memory.sample(sim)
        assert "m_rd_data" not in sim.signals  # nothing before the edge
        memory.commit(sim)
        assert sim.signals["m_rd_data"] == 12

    def test_read_before_write_on_same_cycle_and_address(self):
        """An rw interface returns the OLD value when a read and a write hit
        the same address in the same cycle (read-before-write)."""
        memory = InterfaceMemory("m", MemrefType((4,), I32, "rw"),
                                 [5, 6, 7, 8])
        sim = FakeSim({"m_addr": 1, "m_rd_en": 1, "m_wr_en": 1,
                       "m_wr_data": 99})
        memory.sample(sim)
        memory.commit(sim)
        assert sim.signals["m_rd_data"] == 6      # pre-write value
        assert memory.data[1] == 99               # write landed after

    def test_out_of_bounds_read_returns_zero_and_write_is_dropped(self):
        memory = InterfaceMemory("m", MemrefType((2,), I32, "rw"), [1, 2])
        sim = FakeSim({"m_addr": 7, "m_rd_en": 1, "m_wr_en": 1,
                       "m_wr_data": 42})
        memory.sample(sim)
        memory.commit(sim)
        assert sim.signals["m_rd_data"] == 0
        assert memory.data == [1, 2]

    def test_write_only_interface_ignores_read_enables(self):
        memory = InterfaceMemory("m", MemrefType((2,), I32, "w"))
        sim = FakeSim({"m_addr": 0, "m_rd_en": 1, "m_wr_en": 1,
                       "m_wr_data": 3})
        memory.sample(sim)
        memory.commit(sim)
        assert memory.reads == 0 and memory.writes == 1
        assert "m_rd_data" not in sim.signals

    def test_missing_enable_signals_default_to_idle(self):
        memory = InterfaceMemory("m", MemrefType((2,), I32, "rw"))
        memory.sample(FakeSim({}))  # no buses driven at all
        memory.commit(FakeSim({}))
        assert memory.reads == 0 and memory.writes == 0

    def test_values_masked_to_element_width(self):
        from repro.ir.types import IntegerType
        memory = InterfaceMemory("m", MemrefType((2,), IntegerType(8), "rw"))
        sim = FakeSim({"m_addr": 0, "m_rd_en": 0, "m_wr_en": 1,
                       "m_wr_data": 0x1FF})
        memory.sample(sim)
        memory.commit(sim)
        assert memory.data[0] == 0xFF

    def test_flatten_rejects_shape_mismatch(self):
        with pytest.raises(SimulationError, match="does not match"):
            flatten_tensor(MemrefType((2, 2), I32, "r"), np.zeros((3,)))

    def test_unflatten_sign_extends(self):
        memref = MemrefType((2,), I32, "r")
        array = unflatten_tensor(memref, [(1 << 32) - 5, 7])
        assert list(array) == [-5, 7]


# --------------------------------------------------------------------------- #
# Port conflicts and delegation rules
# --------------------------------------------------------------------------- #


def single_func_design(body):
    """A one-function module: body(f, in_port, out_port)."""
    design = DesignBuilder("memtest")
    in_type = MemrefType((8,), I32, port="r")
    out_type = MemrefType((8,), I32, port="w")
    with design.func("top", [("a", in_type), ("o", out_type)]) as f:
        body(f)
        f.return_()
    return design


class TestPortConflicts:
    def test_same_cycle_same_bank_different_address_is_flagged(self):
        def body(f):
            buf_r, buf_w = f.alloc((8,), I32, ports=("r", "w"),
                                   mem_kind="bram", name="buf")
            value = f.mem_read(f.arg("a"), [0], time=f.time)
            f.mem_write(value, buf_w, [0], time=f.time, offset=1)
            f.mem_write(value, buf_w, [1], time=f.time, offset=1)

        report = verify_schedule(single_func_design(body).module)
        assert not report.ok
        assert report.of_kind(PORT_CONFLICT)

    def test_same_cycle_different_banks_is_legal(self):
        def body(f):
            buf_r, buf_w = f.alloc((8,), I32, ports=("r", "w"), packing=[],
                                   name="regs")
            value = f.mem_read(f.arg("a"), [0], time=f.time)
            f.mem_write(value, buf_w, [0], time=f.time, offset=1)
            f.mem_write(value, buf_w, [1], time=f.time, offset=1)
            out = f.mem_read(buf_r, [0], time=f.time, offset=2)
            f.mem_write(out, f.arg("o"), [0], time=f.time, offset=2)

        module = single_func_design(body).module
        assert verify_schedule(module).ok
        generate_verilog_impl(module)  # lowers without LoweringError

    def test_distributed_dim_with_variable_index_rejected_at_lowering(self):
        def body(f):
            buf_r, buf_w = f.alloc((8,), I32, ports=("r", "w"), packing=[],
                                   name="regs")
            with f.for_loop(0, 8, 1, time=f.time, iter_offset=1,
                            iv_name="i") as loop:
                value = f.mem_read(f.arg("a"), [loop.iv], time=loop.time)
                iv1 = f.delay(loop.iv, 1, time=loop.time)
                f.mem_write(value, buf_w, [iv1], time=loop.time, offset=1)
                f.yield_(loop.time, offset=1)

        with pytest.raises(LoweringError, match="constant"):
            generate_verilog_impl(single_func_design(body).module)


def callee_module(design, name="stage"):
    in_type = MemrefType((8,), I32, port="r")
    out_type = MemrefType((8,), I32, port="w")
    with design.func(name, [("src", in_type), ("dst", out_type)]) as f:
        with f.for_loop(0, 8, 1, time=f.time, iter_offset=1,
                        iv_name="i") as loop:
            value = f.mem_read(f.arg("src"), [loop.iv], time=loop.time)
            iv1 = f.delay(loop.iv, 1, time=loop.time)
            f.mem_write(value, f.arg("dst"), [iv1], time=loop.time, offset=1)
            f.yield_(loop.time, offset=1)
        f.return_()


class TestDelegation:
    def test_memref_port_passed_to_two_calls_rejected(self):
        design = DesignBuilder("double")
        callee_module(design)
        in_type = MemrefType((8,), I32, port="r")
        out_type = MemrefType((8,), I32, port="w")
        with design.func("top", [("a", in_type), ("o", out_type),
                                 ("o2", out_type)]) as f:
            f.call("stage", [f.arg("a"), f.arg("o")], time=f.time)
            f.call("stage", [f.arg("a"), f.arg("o2")], time=f.time,
                   offset=32)
            f.return_()
        with pytest.raises(LoweringError, match="at most one"):
            generate_verilog_impl(design.module, top="top")

    def test_direct_access_plus_delegation_rejected(self):
        design = DesignBuilder("mixed")
        callee_module(design)
        in_type = MemrefType((8,), I32, port="r")
        out_type = MemrefType((8,), I32, port="w")
        with design.func("top", [("a", in_type), ("o", out_type)]) as f:
            f.mem_read(f.arg("a"), [0], time=f.time)
            f.call("stage", [f.arg("a"), f.arg("o")], time=f.time, offset=2)
            f.return_()
        with pytest.raises(LoweringError, match="separate ports"):
            generate_verilog_impl(design.module, top="top")

    def test_banked_alloc_passed_to_call_rejected(self):
        design = DesignBuilder("banked")
        callee_module(design)
        out_type = MemrefType((8,), I32, port="w")
        with design.func("top", [("o", out_type)]) as f:
            # packing=[] distributes all 8 elements over 8 register banks.
            buf_r, buf_w = f.alloc((8,), I32, ports=("r", "w"), packing=[],
                                   name="buf")
            f.call("stage", [buf_r, f.arg("o")], time=f.time)
            f.return_()
        with pytest.raises(LoweringError):
            generate_verilog_impl(design.module, top="top")

    def test_two_port_alloc_delegated_to_two_calls_simulates(self):
        """The stream-buffer pattern: one alloc, write port to the producer
        call, read port to the consumer call — simulated end to end."""
        design = DesignBuilder("pipe")
        callee_module(design)
        in_type = MemrefType((8,), I32, port="r")
        out_type = MemrefType((8,), I32, port="w")
        with design.func("top", [("a", in_type), ("o", out_type)]) as f:
            buf_w, buf_r = f.alloc((8,), I32, ports=("w", "r"),
                                   mem_kind="bram", name="edge")
            f.call("stage", [f.arg("a"), buf_w], time=f.time)
            f.call("stage", [buf_r, f.arg("o")], time=f.time, offset=16)
            f.return_()
        result = generate_verilog_impl(design.module, top="top")
        data = np.arange(8)
        run = run_design_impl(
            result.design,
            memories={"a": (in_type, data), "o": (out_type, np.zeros(8))},
            max_cycles=500, engine="differential")
        assert run.done
        assert np.array_equal(run.memory_array("o"), data)
